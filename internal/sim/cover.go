package sim

// Structural coverage instrumentation, shared by both backends. The
// coverage model is *cycle-sampled*: points are recorded against the
// settled simulation state at two well-defined instants of the harness
// cycle protocol — statements and branch arms against the pre-edge state
// (inputs applied and combinational logic settled, the state every
// posedge process observes), toggles and FSM occupancy against the
// post-cycle state. Sampling against fixpoints rather than transient
// executions is what makes coverage maps byte-identical across the
// event-driven and compiled backends: the differential suite already
// proves the fixpoints agree, and the rtlgen gates extend that proof to
// the encoded coverage maps (which additionally cross-checks the
// compiled condition probes against the interpreter's evaluator).
//
// The instrumentation is zero-overhead when off: the only cost on a
// non-covering instance is one nil check per harness cycle, and nothing
// is added to the signal-store or settle hot paths. The coverage plan —
// point enumeration and compiled condition probes — is built lazily,
// once per Program, and shared by every covering instance.

import (
	"fmt"
	"sync"

	"uvllm/internal/cover"
	"uvllm/internal/verilog"
)

// CoverOptions selects the structural coverage models an Instance
// collects. The zero value disables coverage entirely.
type CoverOptions struct {
	// Statements counts executable statements of always-block bodies
	// reached by the settled pre-edge state.
	Statements bool
	// Branches counts if/case arms (including implicit empty elses and
	// case defaults) selected by the settled pre-edge state.
	Branches bool
	// Toggles records every non-memory signal bit observed at 0 and at 1
	// in the post-cycle state.
	Toggles bool
	// FSM records state and transition occupancy of inferred FSM
	// registers (sequentially written signals dispatched on by a case
	// statement with constant arms).
	FSM bool

	// ExcludeSignals names signals left out of the toggle and FSM
	// universes. The harness adds its clock automatically: the clock is
	// low at both sample instants, so its high phase is unobservable by
	// construction.
	ExcludeSignals []string
}

// CoverAll enables every coverage model.
func CoverAll() CoverOptions {
	return CoverOptions{Statements: true, Branches: true, Toggles: true, FSM: true}
}

// Any reports whether at least one coverage model is enabled.
func (o CoverOptions) Any() bool {
	return o.Statements || o.Branches || o.Toggles || o.FSM
}

// ---------------------------------------------------------------------------
// Coverage plan: per-Program point enumeration and condition probes.

// coverProbe evaluates one branch condition or case-arm expression at its
// self-determined width against an instance's current state. ok is false
// when the (interpreted) evaluation fails; compiled probes cannot fail.
type coverProbe func(*Instance) (v uint64, ok bool)

type coverNodeKind uint8

const (
	coverPlain coverNodeKind = iota
	coverIf
	coverCase
	coverFor
)

// coverNode is one statement of the coverage plan. Points are
// precomputed so sampling never formats names.
type coverNode struct {
	stmt cover.Point
	kind coverNodeKind

	// coverIf
	cond    coverProbe
	thenPt  cover.Point
	elsePt  cover.Point
	thenSub []*coverNode
	elseSub []*coverNode

	// coverCase
	sel    coverProbe
	arms   []coverArm
	defPt  cover.Point
	defSub []*coverNode

	// coverFor
	body []*coverNode
}

// coverArm is one explicit (non-default) case item.
type coverArm struct {
	vals []coverProbe
	pt   cover.Point
	sub  []*coverNode
}

type coverProcPlan struct {
	nodes []*coverNode
}

type coverTogglePlan struct {
	sig   int
	name  string
	width int
	pts0  []cover.Point
	pts1  []cover.Point
}

type coverFSMPlan struct {
	sig      int
	name     string
	statePts map[uint64]cover.Point
	transPts map[[2]uint64]cover.Point
}

// coverPlan is the immutable, per-Program coverage structure.
type coverPlan struct {
	procs   []coverProcPlan
	toggles []coverTogglePlan
	fsms    []coverFSMPlan
}

// coverPlan returns the program's coverage plan, building it on first
// use. The plan is immutable and shared by all instances.
func (p *Program) coverPlan() *coverPlan {
	p.coverOnce.Do(func() {
		p.coverP = buildCoverPlan(p)
	})
	return p.coverP
}

// maxFSMStates bounds the inferred-FSM state universe so the transition
// cross product (states²) stays small.
const maxFSMStates = 16

func buildCoverPlan(p *Program) *coverPlan {
	d := p.d
	// The scratch compiler serves two roles: constant evaluation of case
	// arms for FSM inference (both backends), and — on the compiled
	// backend only — lowering condition probes to closures, which the
	// cross-backend coverage gate then checks against the interpreter.
	comp := &compiler{s: &Instance{d: d, vals: make([]uint64, len(d.sigs))}}
	compiled := p.backend == BackendCompiled

	plan := &coverPlan{}

	// Statement/branch plan: always-block bodies only. Continuous
	// assignments and port connections are structureless (one expression,
	// no arms) and initial blocks run once at reset; neither discriminates
	// stimulus quality, which is what the model is for.
	for _, pr := range d.procs {
		if pr.body == nil || pr.kind == procInit {
			continue
		}
		b := &coverNodeBuilder{comp: comp, compiled: compiled, prefix: fmt.Sprintf("p%d", pr.idx)}
		nodes := b.build(pr, pr.body)
		if len(nodes) > 0 {
			plan.procs = append(plan.procs, coverProcPlan{nodes: nodes})
		}
	}

	// Toggle plan: every scalar (non-memory) signal bit, both directions.
	for i, si := range d.sigs {
		if si.isMem || si.width <= 0 {
			continue
		}
		tg := coverTogglePlan{sig: i, name: si.name, width: si.width}
		for b := 0; b < si.width; b++ {
			bit := fmt.Sprintf("%s[%d]", si.name, b)
			tg.pts0 = append(tg.pts0, cover.Point{Kind: cover.KindToggle0, Name: bit})
			tg.pts1 = append(tg.pts1, cover.Point{Kind: cover.KindToggle1, Name: bit})
		}
		plan.toggles = append(plan.toggles, tg)
	}

	// FSM plan: a sequentially written register that some case statement
	// dispatches on with all-constant arms is inferred to be a state
	// register; its declared states are the arm constants.
	plan.fsms = inferFSMs(d, comp)
	return plan
}

// coverNodeBuilder numbers statements within one process.
type coverNodeBuilder struct {
	comp     *compiler
	compiled bool
	prefix   string
	n        int
}

func (b *coverNodeBuilder) probe(e verilog.Expr, sc *scope) coverProbe {
	if b.compiled {
		if fn, err := b.comp.compileSelf(e, sc); err == nil {
			return func(s *Instance) (uint64, bool) { return fn(s), true }
		}
	}
	return func(s *Instance) (uint64, bool) {
		v, err := s.evalSelf(e, sc)
		return v, err == nil
	}
}

// build lowers one statement tree into coverage nodes.
func (b *coverNodeBuilder) build(pr *process, st verilog.Stmt) []*coverNode {
	switch v := st.(type) {
	case nil, *verilog.NullStmt:
		return nil
	case *verilog.Block:
		var out []*coverNode
		for _, sub := range v.Stmts {
			out = append(out, b.build(pr, sub)...)
		}
		return out
	case *verilog.If:
		b.n++
		id := fmt.Sprintf("%s.s%d", b.prefix, b.n)
		n := &coverNode{
			stmt:    cover.Point{Kind: cover.KindStmt, Name: id},
			kind:    coverIf,
			cond:    b.probe(v.Cond, pr.sc),
			thenPt:  cover.Point{Kind: cover.KindBranch, Name: id + ".then"},
			elsePt:  cover.Point{Kind: cover.KindBranch, Name: id + ".else"},
			thenSub: b.build(pr, v.Then),
		}
		if v.Else != nil {
			n.elseSub = b.build(pr, v.Else)
		}
		return []*coverNode{n}
	case *verilog.Case:
		b.n++
		id := fmt.Sprintf("%s.s%d", b.prefix, b.n)
		n := &coverNode{
			stmt:  cover.Point{Kind: cover.KindStmt, Name: id},
			kind:  coverCase,
			sel:   b.probe(v.Expr, pr.sc),
			defPt: cover.Point{Kind: cover.KindBranch, Name: id + ".default"},
		}
		armIdx := 0
		for i := range v.Items {
			it := &v.Items[i]
			if it.Exprs == nil {
				n.defSub = b.build(pr, it.Body)
				continue
			}
			arm := coverArm{
				pt:  cover.Point{Kind: cover.KindBranch, Name: fmt.Sprintf("%s.a%d", id, armIdx)},
				sub: b.build(pr, it.Body),
			}
			for _, ex := range it.Exprs {
				arm.vals = append(arm.vals, b.probe(ex, pr.sc))
			}
			n.arms = append(n.arms, arm)
			armIdx++
		}
		return []*coverNode{n}
	case *verilog.For:
		b.n++
		id := fmt.Sprintf("%s.s%d", b.prefix, b.n)
		// The body is marked reachable when the loop statement is; the
		// sampler does not re-execute loop iterations (it must not mutate
		// state), so per-iteration branch decisions inside loops are
		// approximated by the settled post-loop state.
		return []*coverNode{{
			stmt: cover.Point{Kind: cover.KindStmt, Name: id},
			kind: coverFor,
			body: b.build(pr, v.Body),
		}}
	default:
		b.n++
		return []*coverNode{{
			stmt: cover.Point{Kind: cover.KindStmt, Name: fmt.Sprintf("%s.s%d", b.prefix, b.n)},
			kind: coverPlain,
		}}
	}
}

// inferFSMs finds state registers: signals written by a sequential
// process and dispatched on by a bare-identifier case statement whose
// arms are all constant. The declared state set is the union of arm
// constants over every such case (capped at maxFSMStates); the
// transition universe is the full states×states cross product.
func inferFSMs(d *Design, comp *compiler) []coverFSMPlan {
	seqWritten := map[int]bool{}
	for _, pr := range d.procs {
		if pr.kind == procSeq {
			for _, sig := range writeSet(pr) {
				seqWritten[sig] = true
			}
		}
	}
	states := map[int]map[uint64]bool{} // sig -> declared states
	ok := map[int]bool{}
	for _, pr := range d.procs {
		if pr.body == nil {
			continue
		}
		sc := pr.sc
		verilog.WalkStmt(pr.body, func(st verilog.Stmt) bool {
			cs, isCase := st.(*verilog.Case)
			if !isCase {
				return true
			}
			id, isIdent := cs.Expr.(*verilog.Ident)
			if !isIdent {
				return true
			}
			idx, declared := sc.names[id.Name]
			if !declared || !seqWritten[idx] || d.sigs[idx].isMem {
				return true
			}
			vals := map[uint64]bool{}
			for i := range cs.Items {
				for _, ex := range cs.Items[i].Exprs {
					v, isConst := comp.staticEval(ex, sc)
					if !isConst {
						return true // one dynamic arm disqualifies this case
					}
					vals[v] = true
				}
			}
			if len(vals) < 2 {
				return true
			}
			if states[idx] == nil {
				states[idx] = map[uint64]bool{}
			}
			for v := range vals {
				states[idx][v] = true
			}
			ok[idx] = true
			return true
		})
	}
	var plans []coverFSMPlan
	// Deterministic order: signal index order.
	for idx := 0; idx < len(d.sigs); idx++ {
		if !ok[idx] || len(states[idx]) > maxFSMStates {
			continue
		}
		name := d.sigs[idx].name
		f := coverFSMPlan{
			sig:      idx,
			name:     name,
			statePts: map[uint64]cover.Point{},
			transPts: map[[2]uint64]cover.Point{},
		}
		for v := range states[idx] {
			f.statePts[v] = cover.Point{Kind: cover.KindState, Name: fmt.Sprintf("%s=%d", name, v)}
		}
		for a := range states[idx] {
			for b := range states[idx] {
				f.transPts[[2]uint64{a, b}] = cover.Point{Kind: cover.KindTrans, Name: fmt.Sprintf("%s:%d->%d", name, a, b)}
			}
		}
		plans = append(plans, f)
	}
	return plans
}

// ---------------------------------------------------------------------------
// Per-instance coverage state and sampling.

// instCover is the mutable coverage state of one covering instance.
type instCover struct {
	opts    CoverOptions
	plan    *coverPlan
	m       *cover.Map
	toggles []coverTogglePlan // plan entries minus exclusions
	fsms    []coverFSMPlan
	fsmPrev []uint64
	fsmSeen []bool
}

// EnableCover switches structural coverage collection on (or off, with a
// zero CoverOptions), replacing any coverage collected so far. The full
// point universe of the enabled models is registered immediately, so
// Coverage().Percent() has its denominator before the first sample.
// The accumulated coverage map is not part of Snapshot/Restore — it is
// observational, and rewinding an instance does not un-observe its
// history — but the FSM sampler's transition history is captured and
// restored so a rewound instance never records a phantom transition out
// of the pre-restore state (see Snapshot).
func (s *Instance) EnableCover(opts CoverOptions) error {
	if !opts.Any() {
		s.cov = nil
		return nil
	}
	if s.program == nil {
		return fmt.Errorf("sim: cover: instance has no program")
	}
	plan := s.program.coverPlan()
	excluded := map[string]bool{}
	for _, n := range opts.ExcludeSignals {
		excluded[n] = true
	}
	ic := &instCover{opts: opts, plan: plan, m: cover.New()}
	if opts.Statements || opts.Branches {
		for _, pp := range plan.procs {
			registerNodes(ic.m, opts, pp.nodes)
		}
	}
	if opts.Toggles {
		for _, tg := range plan.toggles {
			if excluded[tg.name] {
				continue
			}
			ic.toggles = append(ic.toggles, tg)
			for b := 0; b < tg.width; b++ {
				ic.m.Register(tg.pts0[b])
				ic.m.Register(tg.pts1[b])
			}
		}
	}
	if opts.FSM {
		for _, f := range plan.fsms {
			if excluded[f.name] {
				continue
			}
			ic.fsms = append(ic.fsms, f)
			for _, pt := range f.statePts {
				ic.m.Register(pt)
			}
			for _, pt := range f.transPts {
				ic.m.Register(pt)
			}
		}
		ic.fsmPrev = make([]uint64, len(ic.fsms))
		ic.fsmSeen = make([]bool, len(ic.fsms))
	}
	s.cov = ic
	return nil
}

func registerNodes(m *cover.Map, opts CoverOptions, nodes []*coverNode) {
	for _, n := range nodes {
		if opts.Statements {
			m.Register(n.stmt)
		}
		switch n.kind {
		case coverIf:
			if opts.Branches {
				m.Register(n.thenPt)
				m.Register(n.elsePt)
			}
			registerNodes(m, opts, n.thenSub)
			registerNodes(m, opts, n.elseSub)
		case coverCase:
			if opts.Branches {
				for i := range n.arms {
					m.Register(n.arms[i].pt)
				}
				m.Register(n.defPt)
			}
			for i := range n.arms {
				registerNodes(m, opts, n.arms[i].sub)
			}
			registerNodes(m, opts, n.defSub)
		case coverFor:
			registerNodes(m, opts, n.body)
		}
	}
}

// CoverEnabled reports whether the instance is collecting coverage.
func (s *Instance) CoverEnabled() bool { return s.cov != nil }

// Coverage returns the accumulated structural coverage map, or nil when
// coverage is not enabled. The returned map is live: it keeps
// accumulating as the instance simulates. Clone it to get a stable copy.
func (s *Instance) Coverage() *cover.Map {
	if s.cov == nil {
		return nil
	}
	return s.cov.m
}

// coverSampleExec records statement and branch coverage against the
// current (settled) state. The harness calls it at the pre-edge instant.
func (s *Instance) coverSampleExec() {
	ic := s.cov
	if ic == nil || (!ic.opts.Statements && !ic.opts.Branches) {
		return
	}
	for _, pp := range ic.plan.procs {
		ic.walk(s, pp.nodes)
	}
}

func (ic *instCover) walk(s *Instance, nodes []*coverNode) {
	for _, n := range nodes {
		if ic.opts.Statements {
			ic.m.Add(n.stmt, 1)
		}
		switch n.kind {
		case coverIf:
			v, ok := n.cond(s)
			if !ok {
				continue
			}
			if v != 0 {
				if ic.opts.Branches {
					ic.m.Add(n.thenPt, 1)
				}
				ic.walk(s, n.thenSub)
			} else {
				if ic.opts.Branches {
					ic.m.Add(n.elsePt, 1)
				}
				ic.walk(s, n.elseSub)
			}
		case coverCase:
			sel, ok := n.sel(s)
			if !ok {
				continue
			}
			matched := false
			for i := range n.arms {
				for _, vp := range n.arms[i].vals {
					v, vok := vp(s)
					if vok && v == sel {
						matched = true
						break
					}
				}
				if matched {
					if ic.opts.Branches {
						ic.m.Add(n.arms[i].pt, 1)
					}
					ic.walk(s, n.arms[i].sub)
					break
				}
			}
			if !matched {
				if ic.opts.Branches {
					ic.m.Add(n.defPt, 1)
				}
				ic.walk(s, n.defSub)
			}
		case coverFor:
			ic.walk(s, n.body)
		}
	}
}

// coverSampleState records toggle and FSM coverage against the current
// (settled) state. The harness calls it at the post-cycle instant.
func (s *Instance) coverSampleState() {
	ic := s.cov
	if ic == nil {
		return
	}
	if ic.opts.Toggles {
		for _, tg := range ic.toggles {
			v := s.vals[tg.sig]
			for b := 0; b < tg.width; b++ {
				if v&(1<<uint(b)) != 0 {
					ic.m.Add(tg.pts1[b], 1)
				} else {
					ic.m.Add(tg.pts0[b], 1)
				}
			}
		}
	}
	if ic.opts.FSM {
		for i := range ic.fsms {
			f := &ic.fsms[i]
			cur := s.vals[f.sig]
			if pt, ok := f.statePts[cur]; ok {
				ic.m.Add(pt, 1)
			}
			if ic.fsmSeen[i] {
				if pt, ok := f.transPts[[2]uint64{ic.fsmPrev[i], cur}]; ok {
					ic.m.Add(pt, 1)
				}
			}
			ic.fsmPrev[i] = cur
			ic.fsmSeen[i] = true
		}
	}
}

// coverOnceState is embedded in Program (declared here to keep all
// coverage structure in one file).
type coverOnceState struct {
	coverOnce sync.Once
	coverP    *coverPlan
}
