package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"uvllm/internal/dataset"
	"uvllm/internal/obs"
)

// maxRequestBody bounds a submission body (a DUT source plus knobs fits
// comfortably; anything larger is abuse).
const maxRequestBody = 4 << 20

// Server is the HTTP front-end over a Runner: the verification-as-a-
// service API of cmd/uvllmd.
//
//	POST   /v1/jobs            submit a design or repair job (202, 400, 429, 503)
//	GET    /v1/jobs/{id}       job status + terminal result
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/jobs/{id}/events  SSE stream of progress events
//	GET    /v1/modules         benchmark module catalog
//	GET    /v1/metrics         queue/latency/cache snapshot (JSON)
//	GET    /metrics            the same registry in Prometheus text format
//	GET    /healthz            liveness + drain state
//
// Every handler is instrumented: request latencies and error counts
// aggregate per endpoint pattern in the obs registry and surface as
// percentiles on /v1/metrics and as histograms on /metrics.
type Server struct {
	runner *Runner
	mux    *http.ServeMux

	epMu sync.Mutex
	eps  map[string]*endpointHandles
}

// endpointHandles are one route's registry handles, created at
// registration so the request path only observes.
type endpointHandles struct {
	lat  *obs.Histogram
	errs *obs.Counter
}

// NewServer builds the HTTP layer over a fresh Runner.
func NewServer(cfg RunnerConfig) *Server {
	s := &Server{
		runner: NewRunner(cfg),
		mux:    http.NewServeMux(),
		eps:    map[string]*endpointHandles{},
	}
	s.handle("POST /v1/jobs", s.submit)
	s.handle("GET /v1/jobs/{id}", s.status)
	s.handle("DELETE /v1/jobs/{id}", s.cancel)
	s.handle("GET /v1/jobs/{id}/events", s.events)
	s.handle("GET /v1/modules", s.modules)
	s.handle("GET /v1/metrics", s.metrics)
	s.handle("GET /metrics", s.prometheus)
	s.handle("GET /healthz", s.health)
	return s
}

// Runner returns the job runner behind the server.
func (s *Server) Runner() *Runner { return s.runner }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain gracefully winds the server down: new submissions get 503,
// queued jobs move to the drained state, in-flight jobs finish (bounded
// by ctx). Status and stream endpoints keep serving so clients can
// observe their jobs' fate.
func (s *Server) Drain(ctx context.Context) error {
	return s.runner.Drain(ctx)
}

// handle wraps a handler with the per-endpoint latency instrumentation:
// one registry histogram and error counter per route, created here so
// the request path only observes.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	reg := s.runner.Services().Obs
	ep := &endpointHandles{
		lat:  reg.Histogram("http_request_seconds", "request latency by endpoint", stageBuckets, obs.L("endpoint", pattern)),
		errs: reg.Counter("http_request_errors_total", "responses with status >= 400 by endpoint", obs.L("endpoint", pattern)),
	}
	s.epMu.Lock()
	s.eps[pattern] = ep
	s.epMu.Unlock()
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		h(cw, r)
		ep.lat.Observe(time.Since(start).Seconds())
		if cw.code >= 400 {
			ep.errs.Inc()
		}
	})
}

// endpointSnapshot renders the per-endpoint section of /v1/metrics from
// the registry handles, omitting endpoints that have served nothing —
// the same shape the bespoke recorder produced.
func (s *Server) endpointSnapshot() map[string]EndpointStats {
	s.epMu.Lock()
	defer s.epMu.Unlock()
	out := map[string]EndpointStats{}
	for pattern, ep := range s.eps {
		n := int64(ep.lat.Count())
		if n == 0 {
			continue
		}
		out[pattern] = EndpointStats{
			Latency: summarize(n, ep.lat.Samples()),
			Errors:  ep.errs.Value(),
		}
	}
	return out
}

// codeWriter captures the response status for instrumentation.
type codeWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader implements http.ResponseWriter.
func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying flusher so SSE streaming works
// through the instrumentation wrapper.
func (w *codeWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// JobView is the status-endpoint rendering of one job.
type JobView struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// Tenant is the fair-scheduling label.
	Tenant string `json:"tenant,omitempty"`
	// Status is the lifecycle state.
	Status Status `json:"status"`
	// QueueWaitMS is how long the job waited for a worker (set once
	// running).
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// RunMS is the job's execution wall time (set once terminal).
	RunMS float64 `json:"run_ms,omitempty"`
	// Result is the terminal outcome (set once terminal, except for
	// drained jobs, which never ran).
	Result *Result `json:"result,omitempty"`
}

func viewOf(j *Job) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, Tenant: j.Spec.Tenant, Status: j.status,
		QueueWaitMS: float64(j.waited) / float64(time.Millisecond),
		RunMS:       float64(j.ranFor) / float64(time.Millisecond),
	}
	if j.result != nil {
		res := *j.result
		v.Result = &res
	}
	return v
}

// submitResponse is the 202 body of POST /v1/jobs.
type submitResponse struct {
	// ID is the assigned job identifier.
	ID string `json:"id"`
	// Status is the initial lifecycle state (queued).
	Status Status `json:"status"`
	// QueueDepth is the queue depth after this submission.
	QueueDepth int `json:"queue_depth"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "read body: " + err.Error()})
		return
	}
	if len(body) > maxRequestBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "request body too large"})
		return
	}
	var spec JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decode spec: " + err.Error()})
		return
	}
	j, err := s.runner.Submit(spec)
	switch {
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case err == ErrDraining:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: j.ID, Status: j.Status(), QueueDepth: s.runner.QueueDepth(),
	})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	j, ok := s.runner.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, viewOf(j))
}

// cancel handles DELETE /v1/jobs/{id}: cancellation of a queued or
// running job. 202 with the job view on acceptance (idempotent —
// cancelling an already-terminal job just returns its state), 404 for
// unknown IDs.
func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.runner.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusAccepted, viewOf(j))
}

// events streams a job's progress as Server-Sent Events: one
// `data: <json Event>` frame per event from the beginning of the job's
// history, closing after the terminal event. Reconnecting clients replay
// the full (small) history; Event.Seq makes deduplication trivial.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.runner.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	seq := 0
	for {
		evs, more, terminal := j.EventsSince(seq)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		seq += len(evs)
		if terminal {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

// moduleView is one catalog row of GET /v1/modules.
type moduleView struct {
	// Name is the benchmark module name (JobSpec.Module).
	Name string `json:"name"`
	// Category is the paper Table II group.
	Category string `json:"category"`
	// Complexity is the 1..5 difficulty grade.
	Complexity int `json:"complexity"`
	// Clock is the clock input name ("" for combinational).
	Clock string `json:"clock,omitempty"`
	// IsFSM marks state machines.
	IsFSM bool `json:"is_fsm,omitempty"`
}

func (s *Server) modules(w http.ResponseWriter, r *http.Request) {
	var out []moduleView
	for _, m := range dataset.All() {
		out = append(out, moduleView{
			Name: m.Name, Category: string(m.Category),
			Complexity: m.Complexity, Clock: m.Clock, IsFSM: m.IsFSM,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	tenants, byStatus, running := s.runner.Snapshot()
	stages := map[string]LatencySummary{}
	for name, secs := range s.runner.StageStats() {
		stages[name] = summarize(s.runner.stageCount(name), secs)
	}
	cs := s.runner.Services().Cache.Stats()
	ms := s.runner.Services().Memo.Stats()
	writeJSON(w, http.StatusOK, MetricsSnapshot{
		Workers:      s.runner.Workers(),
		QueueDepth:   s.runner.QueueDepth(),
		QueueLimit:   s.runner.cfg.QueueLimit,
		Running:      running,
		Draining:     s.runner.Draining(),
		TenantQueues: tenants,
		JobsByStatus: byStatus,
		Endpoints:    s.endpointSnapshot(),
		Stages:       stages,
		Caches: CacheMetrics{
			Compile:          cs,
			CompileHitRate:   hitRatePct(cs.Hits, cs.Misses),
			TraceMemo:        ms,
			TraceMemoHitRate: hitRatePct(ms.Hits, ms.Misses),
		},
	})
}

// prometheus serves the whole obs registry in the Prometheus text
// exposition format — the scrape target for standard monitoring stacks,
// fed by the same registry as the JSON snapshot.
func (s *Server) prometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.runner.Services().Obs.WritePrometheus(w)
}

// healthBody is the GET /healthz response.
type healthBody struct {
	// Status is "ok" while serving and "draining" after Drain begins.
	Status string `json:"status"`
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	st := "ok"
	code := http.StatusOK
	if s.runner.Draining() {
		st = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthBody{Status: st})
}
