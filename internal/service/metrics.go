package service

import (
	"uvllm/internal/memo"
	"uvllm/internal/metrics"
	"uvllm/internal/sim"
)

// LatencySummary is the percentile digest of one latency series, in
// milliseconds, computed with metrics.Percentile at snapshot time.
type LatencySummary struct {
	// Count is the number of samples observed.
	Count int64 `json:"count"`
	// P50 is the median latency in milliseconds.
	P50 float64 `json:"p50_ms"`
	// P95 is the 95th-percentile latency in milliseconds.
	P95 float64 `json:"p95_ms"`
	// P99 is the 99th-percentile latency in milliseconds.
	P99 float64 `json:"p99_ms"`
}

func summarize(count int64, secs []float64) LatencySummary {
	ms := make([]float64, len(secs))
	for i, s := range secs {
		ms[i] = s * 1000
	}
	return LatencySummary{
		Count: count,
		P50:   metrics.Percentile(ms, 50),
		P95:   metrics.Percentile(ms, 95),
		P99:   metrics.Percentile(ms, 99),
	}
}

// EndpointStats is one endpoint's request accounting.
type EndpointStats struct {
	// Latency digests the endpoint's request latencies.
	Latency LatencySummary `json:"latency"`
	// Errors counts responses with status >= 400.
	Errors int64 `json:"errors"`
}

// CacheMetrics is the cache section of the metrics snapshot: counter
// copies taken through the Stats() snapshot methods (never raw field
// reads) plus derived hit rates.
type CacheMetrics struct {
	// Compile is the sim.Cache snapshot (memory + disk tiers).
	Compile sim.CacheStats `json:"compile"`
	// CompileHitRate is hits/(hits+misses) of the compile cache, percent.
	CompileHitRate float64 `json:"compile_hit_rate"`
	// TraceMemo is the golden-trace memo snapshot.
	TraceMemo memo.Stats `json:"trace_memo"`
	// TraceMemoHitRate is hits/(hits+misses) of the trace memo, percent.
	TraceMemoHitRate float64 `json:"trace_memo_hit_rate"`
}

// MetricsSnapshot is the full scrape of /v1/metrics: queue and worker
// state, per-endpoint and per-stage latency percentiles, and cache
// counters.
type MetricsSnapshot struct {
	// Workers is the worker pool size.
	Workers int `json:"workers"`
	// QueueDepth is the total queued (not running) job count.
	QueueDepth int `json:"queue_depth"`
	// QueueLimit is the backpressure bound.
	QueueLimit int `json:"queue_limit"`
	// Running is the in-flight job count.
	Running int `json:"running"`
	// Draining reports whether the server is refusing new work.
	Draining bool `json:"draining"`
	// TenantQueues is the per-tenant queued-job depth.
	TenantQueues map[string]int `json:"tenant_queues,omitempty"`
	// JobsByStatus counts every known job by lifecycle state.
	JobsByStatus map[Status]int `json:"jobs_by_status"`
	// Endpoints digests request latency per endpoint pattern.
	Endpoints map[string]EndpointStats `json:"endpoints,omitempty"`
	// Stages digests job queue-wait and run latencies.
	Stages map[string]LatencySummary `json:"stages,omitempty"`
	// Caches is the compile-cache and trace-memo counter section.
	Caches CacheMetrics `json:"caches"`
}

func hitRatePct(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
