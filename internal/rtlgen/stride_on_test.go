//go:build race

package rtlgen

// formalSweepStride under the race detector: sparser, see
// stride_off_test.go.
const formalSweepStride = 21
