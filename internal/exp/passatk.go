package exp

import (
	"fmt"
	"strings"

	"uvllm/internal/faultgen"
	"uvllm/internal/metrics"
)

// PassAtKResult is the multi-sample study: the paper queries the LLM five
// times per instance "to reduce the randomness of the response"; this
// study quantifies what additional samples buy by re-running UVLLM under
// k independent seeds and estimating pass@k (Chen et al. 2021, the metric
// the paper cites for functional correctness).
type PassAtKResult struct {
	Instances int
	Samples   int
	PassAt    []float64 // PassAt[i] = estimated pass@(i+1), in percent
}

// passAtKStudy evaluates the first `instances` benchmark entries with
// `samples` seeds each (UVLLM only, expert-validated fixes), on the
// session's backend and shared services.
func passAtKStudy(sess *Session, instances, samples int) PassAtKResult {
	all := faultgen.Benchmark()
	if instances <= 0 || instances > len(all) {
		instances = len(all)
	}
	subset := all[:instances]

	// passes[i] = number of seeds that produced an expert-validated fix.
	passes := make([]int, len(subset))
	for s := 0; s < samples; s++ {
		cfg := sess.config()
		cfg.Seed = int64(100 + s)
		cfg.SkipBaselines = true
		cfg.Instances = subset
		recs := Run(cfg)
		for i, r := range recs {
			if r.UVLLMFix {
				passes[i]++
			}
		}
	}
	res := PassAtKResult{Instances: instances, Samples: samples}
	for k := 1; k <= samples; k++ {
		sum := 0.0
		for _, c := range passes {
			sum += metrics.PassAtK(samples, c, k)
		}
		res.PassAt = append(res.PassAt, 100*sum/float64(len(subset)))
	}
	return res
}

// FormatPassAtK renders the study.
func FormatPassAtK(r PassAtKResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pass@k study (%d instances x %d seeds, UVLLM, expert-validated)\n",
		r.Instances, r.Samples)
	for i, p := range r.PassAt {
		fmt.Fprintf(&b, "  pass@%d = %.2f%%\n", i+1, p)
	}
	return b.String()
}
