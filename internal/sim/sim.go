package sim

import (
	"fmt"

	"uvllm/internal/verilog"
)

// Instance is the mutable half of a simulation: the signal arena, the
// memories, the event queues and the NBA buffer of one run of a Program.
// Instances are cheap to create (Program.NewInstance), Reset, Snapshot
// and Restore; the immutable design tables and compiled closures they
// execute live in the shared Program. The zero value is not usable;
// construct with Program.NewInstance or the New/CompileAndNew wrappers.
type Instance struct {
	program *Program // owning program (immutable, shared)
	d       *Design  // == program.Design(), cached for the hot path
	vals    []uint64
	mems    [][]uint64 // per signal index; nil for non-memories

	combQueue []int
	inQueue   []bool
	seqQueue  []int
	inSeq     []bool
	nba       []nbaWrite
	running   int // index of the currently executing process, or -1

	backend   Backend
	code      *program // compiled closures; nil for the event-driven backend
	levelized bool     // compiled AND cleanly levelizable: sweep scheduler active
	needSweep bool     // levelized mode: a combinational process is dirty
	inSweep   bool     // levelized mode: currently inside a sweep
	dirty     []bool   // levelized mode: per-process triggered flag

	// DeltaLimit bounds combinational settle iterations per Settle call;
	// exceeding it reports an oscillation error. Defaults to 10000.
	DeltaLimit int

	cov *instCover // structural coverage state; nil when not collecting
}

// Simulator is the historical name of Instance. It remains the type every
// consumer-facing API uses, so code written against the pre-Program
// simulator keeps compiling and the differential gates keep asserting
// byte-identical behavior across the refactor.
type Simulator = Instance

type nbaWrite struct {
	sig    int
	isMem  bool
	memIdx int
	mask   uint64
	val    uint64
}

// New elaborates top in f and returns a simulator on the default compiled
// backend with initial blocks executed and combinational logic settled.
func New(f *verilog.SourceFile, top string) (*Simulator, error) {
	return NewBackend(f, top, BackendCompiled)
}

// NewBackend is New with an explicit backend selection: Compile followed
// by NewInstance.
func NewBackend(f *verilog.SourceFile, top string, backend Backend) (*Simulator, error) {
	p, err := Compile(f, top, backend)
	if err != nil {
		return nil, err
	}
	return p.NewInstance()
}

// CompileAndNew parses src and simulates module top on the default
// compiled backend. It returns an error for syntax errors, making it
// usable as the pipeline's "does it compile" gate (the paper's synthesis
// check after each patch).
func CompileAndNew(src, top string) (*Simulator, error) {
	return CompileAndNewBackend(src, top, BackendCompiled)
}

// CompileAndNewBackend is CompileAndNew with an explicit backend.
func CompileAndNewBackend(src, top string, backend Backend) (*Simulator, error) {
	f, errs := verilog.Parse(src)
	if len(errs) > 0 {
		return nil, fmt.Errorf("sim: %s", errs[0].Error())
	}
	return NewBackend(f, top, backend)
}

// Backend returns the engine the simulator was constructed with.
func (s *Simulator) Backend() Backend { return s.backend }

// Levelized reports whether the compiled backend's levelized straight-line
// sweep is active (false on the event-driven backend, and for compiled
// designs that fell back to event scheduling).
func (s *Simulator) Levelized() bool { return s.levelized }

// FallbackReason explains why a compiled simulator is not running the
// levelized sweep ("" when it is, or on the event-driven backend).
func (s *Simulator) FallbackReason() string {
	if s.code == nil {
		return ""
	}
	return s.code.reason
}

// Design returns the elaborated design.
func (s *Simulator) Design() *Design { return s.d }

// Program returns the immutable program this instance executes (nil only
// for the compiler's internal scratch instance, which never simulates).
func (s *Instance) Program() *Program { return s.program }

// Reset zeroes all state, re-runs initial blocks and settles.
func (s *Simulator) Reset() error {
	for i := range s.vals {
		s.vals[i] = 0
	}
	for _, mem := range s.mems {
		for i := range mem {
			mem[i] = 0
		}
	}
	s.combQueue = s.combQueue[:0]
	s.seqQueue = s.seqQueue[:0]
	s.nba = s.nba[:0]
	s.needSweep = false
	s.inSweep = false
	for i := range s.inQueue {
		s.inQueue[i] = false
		s.inSeq[i] = false
	}
	for i := range s.dirty {
		s.dirty[i] = false
	}
	for _, p := range s.d.procs {
		switch p.kind {
		case procInit:
			if err := s.execStmt(p, p.body); err != nil {
				return err
			}
		case procComb:
			if s.levelized {
				s.dirty[p.idx] = true
			} else {
				s.enqueueComb(p.idx)
			}
		}
	}
	if s.levelized {
		s.needSweep = true
	}
	return s.Settle()
}

// Set drives a signal by hierarchical name (normally a top-level input)
// without settling. Returns an error for unknown names.
func (s *Simulator) Set(name string, v uint64) error {
	idx, ok := s.d.byName[name]
	if !ok {
		return fmt.Errorf("sim: unknown signal %q", name)
	}
	s.set(idx, v)
	return nil
}

// Get reads a signal by hierarchical name. Unknown names read 0.
func (s *Simulator) Get(name string) uint64 {
	idx, ok := s.d.byName[name]
	if !ok {
		return 0
	}
	return s.vals[idx]
}

// Has reports whether the design has a signal with the given name.
func (s *Simulator) Has(name string) bool {
	_, ok := s.d.byName[name]
	return ok
}

// GetMem reads one word of a memory signal.
func (s *Simulator) GetMem(name string, idx int) uint64 {
	i, ok := s.d.byName[name]
	if !ok {
		return 0
	}
	mem := s.mems[i]
	if idx < 0 || idx >= len(mem) {
		return 0
	}
	return mem[idx]
}

func (s *Simulator) enqueueComb(proc int) {
	if !s.inQueue[proc] {
		s.inQueue[proc] = true
		s.combQueue = append(s.combQueue, proc)
	}
}

func (s *Simulator) enqueueSeq(proc int) {
	if !s.inSeq[proc] {
		s.inSeq[proc] = true
		s.seqQueue = append(s.seqQueue, proc)
	}
}

// set writes a raw signal value, detecting edges and scheduling dependents.
func (s *Simulator) set(idx int, v uint64) {
	w := s.d.sigs[idx].width
	v &= widthMask(w)
	old := s.vals[idx]
	if old == v {
		return
	}
	s.vals[idx] = v
	if s.levelized {
		s.markDirty(idx)
	} else {
		for _, p := range s.d.combOf[idx] {
			// An always block does not re-trigger on changes it makes itself
			// (the sensitivity wait re-arms when the block finishes, at which
			// point its own events have passed). Continuous assignments do:
			// "assign x = ~x" is a genuine combinational loop.
			if p == s.running && s.d.procs[p].body != nil {
				continue
			}
			s.enqueueComb(p)
		}
	}
	oldBit, newBit := old&1, v&1
	for _, ew := range s.d.edgeOf[idx] {
		if ew.pos && oldBit == 0 && newBit == 1 {
			s.enqueueSeq(ew.proc)
		}
		if !ew.pos && oldBit == 1 && newBit == 0 {
			s.enqueueSeq(ew.proc)
		}
	}
}

// touchMem wakes the combinational readers of a memory after a word write
// (memory contents are not part of the scalar change-detection in set).
func (s *Simulator) touchMem(sig int) {
	if s.levelized {
		s.markDirty(sig)
		return
	}
	for _, p := range s.d.combOf[sig] {
		if p == s.running && s.d.procs[p].body != nil {
			continue
		}
		s.enqueueComb(p)
	}
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// Settle runs until no activity remains: combinational fixpoint, then NBA
// commits, then triggered sequential processes, looping. The levelized
// compiled backend replaces the event-queue walk of the combinational
// phase with straight-line sweeps; everything else is shared.
func (s *Simulator) Settle() error {
	if s.levelized {
		return s.settleLevelized()
	}
	steps := 0
	for {
		for len(s.combQueue) > 0 {
			steps++
			if steps > s.DeltaLimit {
				return fmt.Errorf("sim: combinational logic did not converge after %d deltas (oscillation)", s.DeltaLimit)
			}
			proc := s.combQueue[0]
			s.combQueue = s.combQueue[1:]
			s.inQueue[proc] = false
			if err := s.runProc(s.d.procs[proc]); err != nil {
				return err
			}
		}
		if len(s.nba) > 0 {
			writes := s.nba
			s.nba = nil
			for _, w := range writes {
				s.commitNBA(w)
			}
			continue
		}
		if len(s.seqQueue) > 0 {
			procs := s.seqQueue
			s.seqQueue = nil
			for _, pi := range procs {
				s.inSeq[pi] = false
				if err := s.runProc(s.d.procs[pi]); err != nil {
					return err
				}
			}
			continue
		}
		return nil
	}
}

// markDirty triggers the combinational readers of a changed signal in
// levelized mode, mirroring the event engine's self-trigger guard. A
// sweep only needs (re)scheduling when the write happens outside one: in
// topological order every reader runs after its drivers, so in-sweep
// writes only ever dirty processes later in the current pass.
func (s *Simulator) markDirty(idx int) {
	marked := false
	for _, p := range s.d.combOf[idx] {
		if p == s.running && s.d.procs[p].body != nil {
			continue
		}
		s.dirty[p] = true
		marked = true
	}
	if marked && !s.inSweep {
		s.needSweep = true
	}
}

// settleLevelized is Settle for the compiled fast path: each delta round
// evaluates the triggered combinational processes once in topological
// order (an acyclic, single-driver network reaches its unique fixpoint in
// a single pass), then commits the batched NBA writes, then runs
// edge-triggered processes, looping until quiet.
func (s *Simulator) settleLevelized() error {
	steps := 0
	for {
		if s.needSweep {
			steps++
			if steps > s.DeltaLimit {
				return fmt.Errorf("sim: combinational logic did not converge after %d deltas (oscillation)", s.DeltaLimit)
			}
			s.needSweep = false
			s.inSweep = true
			for i, pi := range s.code.order {
				if !s.dirty[pi] {
					continue
				}
				s.dirty[pi] = false
				s.running = pi
				err := s.code.orderFns[i](s)
				s.running = -1
				if err != nil {
					s.inSweep = false
					return err
				}
			}
			s.inSweep = false
			// Defense in depth: forward-only dataflow means no process
			// behind the cursor can have been re-dirtied; if the static
			// analysis ever misses a case, re-sweep (and ultimately trip
			// the delta limit) rather than diverge silently.
			for _, pi := range s.code.order {
				if s.dirty[pi] {
					s.needSweep = true
					break
				}
			}
		}
		if len(s.nba) > 0 {
			writes := s.nba
			s.nba = nil
			for _, w := range writes {
				s.commitNBA(w)
			}
			continue
		}
		if len(s.seqQueue) > 0 {
			procs := s.seqQueue
			s.seqQueue = nil
			for _, pi := range procs {
				s.inSeq[pi] = false
				if err := s.runProc(s.d.procs[pi]); err != nil {
					return err
				}
			}
			continue
		}
		if s.needSweep {
			continue
		}
		return nil
	}
}

func (s *Simulator) commitNBA(w nbaWrite) {
	if w.isMem {
		mem := s.mems[w.sig]
		if w.memIdx >= 0 && w.memIdx < len(mem) {
			old := mem[w.memIdx]
			mem[w.memIdx] = (old &^ w.mask) | (w.val & w.mask)
			if mem[w.memIdx] != old {
				s.touchMem(w.sig)
			}
		}
		return
	}
	old := s.vals[w.sig]
	s.set(w.sig, (old&^w.mask)|(w.val&w.mask))
}

func (s *Simulator) runProc(p *process) error {
	prev := s.running
	s.running = p.idx
	defer func() { s.running = prev }()
	if s.code != nil {
		if fn := s.code.run[p.idx]; fn != nil {
			return fn(s)
		}
	}
	return s.interpProc(p)
}

// interpProc runs one process through the reference interpreter (the
// caller manages s.running).
func (s *Simulator) interpProc(p *process) error {
	if p.connRHS != nil {
		w := s.widthOfLHS(p.connLHS, p.connLHSsc)
		rw := s.widthOf(p.connRHS, p.connRHSsc)
		if rw > w {
			w = rw
		}
		v, err := s.eval(p.connRHS, p.connRHSsc, w)
		if err != nil {
			return err
		}
		return s.writeLHS(p.connLHS, p.connLHSsc, v, true)
	}
	return s.execStmt(p, p.body)
}

// execStmt interprets one statement within process p.
func (s *Simulator) execStmt(p *process, st verilog.Stmt) error {
	switch v := st.(type) {
	case nil, *verilog.NullStmt:
		return nil
	case *verilog.Block:
		for _, sub := range v.Stmts {
			if err := s.execStmt(p, sub); err != nil {
				return err
			}
		}
		return nil
	case *verilog.Assign:
		return s.execAssign(p, v)
	case *verilog.If:
		c, err := s.evalSelf(v.Cond, p.sc)
		if err != nil {
			return err
		}
		if c != 0 {
			return s.execStmt(p, v.Then)
		}
		if v.Else != nil {
			return s.execStmt(p, v.Else)
		}
		return nil
	case *verilog.Case:
		sel, err := s.evalSelf(v.Expr, p.sc)
		if err != nil {
			return err
		}
		var def *verilog.CaseItem
		for i := range v.Items {
			it := &v.Items[i]
			if it.Exprs == nil {
				def = it
				continue
			}
			for _, ex := range it.Exprs {
				lv, err := s.evalSelf(ex, p.sc)
				if err != nil {
					return err
				}
				if lv == sel {
					return s.execStmt(p, it.Body)
				}
			}
		}
		if def != nil {
			return s.execStmt(p, def.Body)
		}
		return nil
	case *verilog.For:
		if v.Init != nil {
			if err := s.execAssign(p, v.Init); err != nil {
				return err
			}
		}
		for iter := 0; ; iter++ {
			if iter > 1<<16 {
				return fmt.Errorf("sim: for loop at line %d exceeded %d iterations", v.Line, 1<<16)
			}
			c, err := s.evalSelf(v.Cond, p.sc)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := s.execStmt(p, v.Body); err != nil {
				return err
			}
			if v.Step != nil {
				if err := s.execAssign(p, v.Step); err != nil {
					return err
				}
			}
		}
	}
	return fmt.Errorf("sim: unsupported statement %T", st)
}

func (s *Simulator) execAssign(p *process, a *verilog.Assign) error {
	if a == nil {
		return nil
	}
	w := s.widthOfLHS(a.LHS, p.sc)
	rw := s.widthOf(a.RHS, p.sc)
	if rw > w {
		w = rw
	}
	v, err := s.eval(a.RHS, p.sc, w)
	if err != nil {
		return err
	}
	return s.writeLHS(a.LHS, p.sc, v, a.Blocking)
}

// writeLHS stores v into the l-value. Blocking writes apply immediately;
// non-blocking writes are deferred to the NBA phase with targets resolved
// now, per the standard.
func (s *Simulator) writeLHS(lhs verilog.Expr, sc *scope, v uint64, blocking bool) error {
	switch l := lhs.(type) {
	case *verilog.Ident:
		idx, ok := sc.names[l.Name]
		if !ok {
			return fmt.Errorf("sim: assignment to undeclared %q (line %d)", l.Name, l.Line)
		}
		w := s.d.sigs[idx].width
		if blocking {
			s.set(idx, v)
		} else {
			s.nba = append(s.nba, nbaWrite{sig: idx, mask: widthMask(w), val: v & widthMask(w)})
		}
		return nil

	case *verilog.Index:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("sim: unsupported nested l-value at line %d", l.Line)
		}
		idx, ok := sc.names[id.Name]
		if !ok {
			return fmt.Errorf("sim: assignment to undeclared %q (line %d)", id.Name, id.Line)
		}
		sel, err := s.evalSelf(l.Index, sc)
		if err != nil {
			return err
		}
		si := s.d.sigs[idx]
		if si.isMem {
			w := widthMask(si.width)
			if blocking {
				mem := s.mems[idx]
				// Unsigned compare: an index with bit 63 set must fall out
				// of range, not wrap negative past the bounds check.
				if sel < uint64(len(mem)) && mem[sel] != v&w {
					mem[sel] = v & w
					s.touchMem(idx)
				}
				return nil
			}
			s.nba = append(s.nba, nbaWrite{sig: idx, isMem: true, memIdx: int(sel), mask: w, val: v & w})
			return nil
		}
		if int(sel) >= si.width {
			return nil // out-of-range bit write ignored (x in 4-state)
		}
		mask := uint64(1) << uint(sel)
		if blocking {
			s.set(idx, (s.vals[idx]&^mask)|((v&1)<<uint(sel)))
		} else {
			s.nba = append(s.nba, nbaWrite{sig: idx, mask: mask, val: (v & 1) << uint(sel)})
		}
		return nil

	case *verilog.PartSelect:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("sim: unsupported nested l-value at line %d", l.Line)
		}
		idx, ok := sc.names[id.Name]
		if !ok {
			return fmt.Errorf("sim: assignment to undeclared %q (line %d)", id.Name, id.Line)
		}
		msb, err := s.evalSelf(l.MSB, sc)
		if err != nil {
			return err
		}
		lsb, err := s.evalSelf(l.LSB, sc)
		if err != nil {
			return err
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		w := int(msb-lsb) + 1
		mask := widthMask(w) << uint(lsb)
		val := (v & widthMask(w)) << uint(lsb)
		if blocking {
			s.set(idx, (s.vals[idx]&^mask)|val)
		} else {
			s.nba = append(s.nba, nbaWrite{sig: idx, mask: mask, val: val})
		}
		return nil

	case *verilog.Concat:
		// MSB-first: the first part receives the top bits.
		total := 0
		widths := make([]int, len(l.Parts))
		for i, part := range l.Parts {
			w := s.widthOfLHS(part, sc)
			widths[i] = w
			total += w
		}
		shift := total
		for i, part := range l.Parts {
			shift -= widths[i]
			pv := (v >> uint(shift)) & widthMask(widths[i])
			if err := s.writeLHS(part, sc, pv, blocking); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("sim: unsupported l-value %T", lhs)
}

// widthOfLHS is the declared width of an l-value.
func (s *Simulator) widthOfLHS(lhs verilog.Expr, sc *scope) int {
	switch l := lhs.(type) {
	case *verilog.Ident:
		if idx, ok := sc.names[l.Name]; ok {
			return s.d.sigs[idx].width
		}
		return 1
	case *verilog.Index:
		if id, ok := l.X.(*verilog.Ident); ok {
			if idx, ok := sc.names[id.Name]; ok && s.d.sigs[idx].isMem {
				return s.d.sigs[idx].width
			}
		}
		return 1
	case *verilog.PartSelect:
		msb, err1 := s.evalSelf(l.MSB, sc)
		lsb, err2 := s.evalSelf(l.LSB, sc)
		if err1 != nil || err2 != nil {
			return 1
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		return int(msb-lsb) + 1
	case *verilog.Concat:
		total := 0
		for _, p := range l.Parts {
			total += s.widthOfLHS(p, sc)
		}
		return total
	}
	return 1
}

// widthOf is the self-determined width of an expression.
func (s *Simulator) widthOf(e verilog.Expr, sc *scope) int {
	switch v := e.(type) {
	case *verilog.Number:
		if v.Width > 0 {
			return v.Width
		}
		return 32
	case *verilog.Ident:
		if _, isParam := sc.env[v.Name]; isParam {
			return 32
		}
		if idx, ok := sc.names[v.Name]; ok {
			return s.d.sigs[idx].width
		}
		return 1
	case *verilog.Unary:
		switch v.Op {
		case "!", "&", "|", "^", "~&", "~|", "~^":
			return 1
		}
		return s.widthOf(v.X, sc)
	case *verilog.Binary:
		switch v.Op {
		case "==", "!=", "===", "!==", "<", ">", "<=", ">=", "&&", "||":
			return 1
		case "<<", ">>", "<<<", ">>>":
			return s.widthOf(v.X, sc)
		}
		a, b := s.widthOf(v.X, sc), s.widthOf(v.Y, sc)
		if a > b {
			return a
		}
		return b
	case *verilog.Ternary:
		a, b := s.widthOf(v.Then, sc), s.widthOf(v.Else, sc)
		if a > b {
			return a
		}
		return b
	case *verilog.Index:
		if id, ok := v.X.(*verilog.Ident); ok {
			if idx, ok := sc.names[id.Name]; ok && s.d.sigs[idx].isMem {
				return s.d.sigs[idx].width
			}
		}
		return 1
	case *verilog.PartSelect:
		msb, err1 := s.evalSelf(v.MSB, sc)
		lsb, err2 := s.evalSelf(v.LSB, sc)
		if err1 != nil || err2 != nil {
			return 1
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		return int(msb-lsb) + 1
	case *verilog.Concat:
		total := 0
		for _, p := range v.Parts {
			total += s.widthOf(p, sc)
		}
		return total
	case *verilog.Repl:
		n, err := s.evalSelf(v.Count, sc)
		if err != nil {
			return 1
		}
		return int(n) * s.widthOf(v.Value, sc)
	}
	return 1
}

// evalSelf evaluates e at its self-determined width.
func (s *Simulator) evalSelf(e verilog.Expr, sc *scope) (uint64, error) {
	return s.eval(e, sc, s.widthOf(e, sc))
}

// eval evaluates e in context width ctxW (context-determined operands are
// evaluated at ctxW; self-determined ones at their own width). The result
// is masked to ctxW bits.
func (s *Simulator) eval(e verilog.Expr, sc *scope, ctxW int) (uint64, error) {
	m := widthMask(ctxW)
	switch v := e.(type) {
	case *verilog.Number:
		return v.Value & m, nil

	case *verilog.Ident:
		if pv, isParam := sc.env[v.Name]; isParam {
			return uint64(pv) & m, nil
		}
		idx, ok := sc.names[v.Name]
		if !ok {
			return 0, fmt.Errorf("sim: read of undeclared signal %q (line %d)", v.Name, v.Line)
		}
		return s.vals[idx] & m, nil

	case *verilog.Unary:
		switch v.Op {
		case "!":
			x, err := s.evalSelf(v.X, sc)
			if err != nil {
				return 0, err
			}
			return b2u(x == 0), nil
		case "-":
			x, err := s.eval(v.X, sc, ctxW)
			if err != nil {
				return 0, err
			}
			return (-x) & m, nil
		case "+":
			return s.eval(v.X, sc, ctxW)
		case "~":
			x, err := s.eval(v.X, sc, ctxW)
			if err != nil {
				return 0, err
			}
			return (^x) & m, nil
		case "&", "|", "^", "~&", "~|", "~^":
			w := s.widthOf(v.X, sc)
			x, err := s.eval(v.X, sc, w)
			if err != nil {
				return 0, err
			}
			return reduce(v.Op, x, w), nil
		}
		return 0, fmt.Errorf("sim: unsupported unary %q", v.Op)

	case *verilog.Binary:
		return s.evalBinary(v, sc, ctxW)

	case *verilog.Ternary:
		c, err := s.evalSelf(v.Cond, sc)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return s.eval(v.Then, sc, ctxW)
		}
		return s.eval(v.Else, sc, ctxW)

	case *verilog.Index:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return 0, fmt.Errorf("sim: unsupported select base at line %d", v.Line)
		}
		sel, err := s.evalSelf(v.Index, sc)
		if err != nil {
			return 0, err
		}
		idx, ok := sc.names[id.Name]
		if !ok {
			return 0, fmt.Errorf("sim: read of undeclared signal %q (line %d)", id.Name, id.Line)
		}
		si := s.d.sigs[idx]
		if si.isMem {
			mem := s.mems[idx]
			if sel >= uint64(len(mem)) {
				return 0, nil
			}
			return mem[sel] & m, nil
		}
		if int(sel) >= si.width {
			return 0, nil
		}
		return (s.vals[idx] >> uint(sel)) & 1, nil

	case *verilog.PartSelect:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return 0, fmt.Errorf("sim: unsupported select base at line %d", v.Line)
		}
		idx, ok := sc.names[id.Name]
		if !ok {
			return 0, fmt.Errorf("sim: read of undeclared signal %q (line %d)", id.Name, id.Line)
		}
		msb, err := s.evalSelf(v.MSB, sc)
		if err != nil {
			return 0, err
		}
		lsb, err := s.evalSelf(v.LSB, sc)
		if err != nil {
			return 0, err
		}
		if msb < lsb {
			msb, lsb = lsb, msb
		}
		w := int(msb-lsb) + 1
		return (s.vals[idx] >> uint(lsb)) & widthMask(w) & m, nil

	case *verilog.Concat:
		var out uint64
		for _, p := range v.Parts {
			w := s.widthOf(p, sc)
			pv, err := s.eval(p, sc, w)
			if err != nil {
				return 0, err
			}
			out = (out << uint(w)) | (pv & widthMask(w))
		}
		return out & m, nil

	case *verilog.Repl:
		n, err := s.evalSelf(v.Count, sc)
		if err != nil {
			return 0, err
		}
		w := s.widthOf(v.Value, sc)
		pv, err := s.eval(v.Value, sc, w)
		if err != nil {
			return 0, err
		}
		var out uint64
		for i := uint64(0); i < n && i < 64; i++ {
			out = (out << uint(w)) | (pv & widthMask(w))
		}
		return out & m, nil
	}
	return 0, fmt.Errorf("sim: unsupported expression %T", e)
}

func (s *Simulator) evalBinary(v *verilog.Binary, sc *scope, ctxW int) (uint64, error) {
	m := widthMask(ctxW)
	switch v.Op {
	case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
		x, err := s.eval(v.X, sc, ctxW)
		if err != nil {
			return 0, err
		}
		y, err := s.eval(v.Y, sc, ctxW)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return (x + y) & m, nil
		case "-":
			return (x - y) & m, nil
		case "*":
			return (x * y) & m, nil
		case "/":
			if y == 0 {
				return 0, nil
			}
			return (x / y) & m, nil
		case "%":
			if y == 0 {
				return 0, nil
			}
			return (x % y) & m, nil
		case "&":
			return x & y & m, nil
		case "|":
			return (x | y) & m, nil
		case "^":
			return (x ^ y) & m, nil
		default: // ~^ ^~ xnor
			return (^(x ^ y)) & m, nil
		}

	case "==", "!=", "<", ">", "<=", ">=", "===", "!==":
		w := s.widthOf(v.X, sc)
		if yw := s.widthOf(v.Y, sc); yw > w {
			w = yw
		}
		x, err := s.eval(v.X, sc, w)
		if err != nil {
			return 0, err
		}
		y, err := s.eval(v.Y, sc, w)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "==", "===":
			return b2u(x == y), nil
		case "!=", "!==":
			return b2u(x != y), nil
		case "<":
			return b2u(x < y), nil
		case ">":
			return b2u(x > y), nil
		case "<=":
			return b2u(x <= y), nil
		default:
			return b2u(x >= y), nil
		}

	case "&&", "||":
		x, err := s.evalSelf(v.X, sc)
		if err != nil {
			return 0, err
		}
		y, err := s.evalSelf(v.Y, sc)
		if err != nil {
			return 0, err
		}
		if v.Op == "&&" {
			return b2u(x != 0 && y != 0), nil
		}
		return b2u(x != 0 || y != 0), nil

	case "<<", "<<<":
		x, err := s.eval(v.X, sc, ctxW)
		if err != nil {
			return 0, err
		}
		n, err := s.evalSelf(v.Y, sc)
		if err != nil {
			return 0, err
		}
		if n >= 64 {
			return 0, nil
		}
		return (x << uint(n)) & m, nil

	case ">>", ">>>":
		// Logical shift; operand masked to its own width first so stray
		// high bits never leak in.
		w := s.widthOf(v.X, sc)
		if ctxW > w {
			w = ctxW
		}
		x, err := s.eval(v.X, sc, w)
		if err != nil {
			return 0, err
		}
		n, err := s.evalSelf(v.Y, sc)
		if err != nil {
			return 0, err
		}
		if n >= 64 {
			return 0, nil
		}
		return (x >> uint(n)) & m, nil
	}
	return 0, fmt.Errorf("sim: unsupported binary operator %q", v.Op)
}

func reduce(op string, x uint64, w int) uint64 {
	x &= widthMask(w)
	var and, or, xor uint64
	and = 1
	for i := 0; i < w; i++ {
		b := (x >> uint(i)) & 1
		and &= b
		or |= b
		xor ^= b
	}
	switch op {
	case "&":
		return and
	case "|":
		return or
	case "^":
		return xor
	case "~&":
		return and ^ 1
	case "~|":
		return or ^ 1
	case "~^":
		return xor ^ 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
