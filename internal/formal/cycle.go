package formal

// Cycle-circuit export. The bounded model checker consumes the blasted
// transition function incrementally (Model.Step, one symbolic state at a
// time); the bit-parallel lane simulator (internal/psim) instead wants the
// whole single-cycle circuit at once — prev-state variables in, post-cycle
// roots out — so it can compile the AIG into a straight-line word evaluator
// and sweep it once per cycle for 64 lanes. Circuit is that export: one
// harness cycle (input apply, clock-low settle, posedge batch, NBA commit,
// negedge batch, final settle) blasted with named variable roots for every
// arena signal, every memory word and every non-clock input, plus the
// mid-cycle "settle" roots that reproduce the harness's reset-deassert
// Settle() instant.

import (
	"uvllm/internal/sim"
)

// Circuit is the transition function of one compiled design for exactly one
// harness cycle, exported as an AIG with named variable roots. All fields
// are read-only after construction.
type Circuit struct {
	// G is the and-inverter graph the circuit's functions live in. With
	// NewCircuitShared it may hold several circuits.
	G *AIG
	// Prog is the compiled program the circuit was blasted from.
	Prog *sim.Program
	// Clock is the modeled clock input name ("" for the combinational
	// protocol). It is taken literally, never guessed.
	Clock string
	// Free lists the circuit's input ports — every non-clock design input
	// in declaration order, exactly the sim.Batch row layout.
	Free []sim.PortInfo
	// FreeIdx holds each free input's arena signal index, aligned with Free.
	FreeIdx []int
	// In holds each free input's per-cycle variable vector, aligned with
	// Free. With NewCircuitShared these may be shared across circuits.
	In []Vec
	// Sigs is the design's full signal table in arena order.
	Sigs []sim.SignalView
	// State holds one previous-state variable vector per signal, in arena
	// order (memories additionally get per-word vectors in StateMem).
	State []Vec
	// StateMem holds the previous-state variable vectors of each memory
	// word, nil for non-memory signals.
	StateMem [][]Vec
	// Next holds each signal's post-cycle function — its value at the
	// instant the harness records its waveform row (clock reads 0).
	Next []Vec
	// NextMem holds each memory word's post-cycle function.
	NextMem [][]Vec
	// Settle holds each signal's value after input application and the
	// clock-low combinational settle only — the harness's Settle() instant,
	// which is the state ApplyReset leaves after deasserting the reset.
	Settle []Vec
	// SettleMem holds each memory word's value at the settle instant.
	SettleMem [][]Vec
}

// NewCircuit blasts prog's single-cycle transition function with fresh
// input variables. The clock name is taken literally ("" = combinational
// protocol) and every non-clock input is free: the circuit is built under
// Options.FreeReset, so designs that need the frozen-reset protocol
// (async-reset edge triggers) return ErrUnsupported.
func NewCircuit(prog *sim.Program, clock string, opts Options) (*Circuit, error) {
	return NewCircuitShared(NewAIG(), nil, prog, clock, opts)
}

// NewCircuitShared blasts prog into an existing graph, taking input
// variables from in by port name (missing entries get fresh variables).
// Circuits sharing a graph and input variables strash-share their common
// structure — the mechanism faultgen's bit-parallel classifier uses to
// evaluate one golden and many mutants of it in a single sweep.
func NewCircuitShared(g *AIG, in map[string]Vec, prog *sim.Program, clock string, opts Options) (*Circuit, error) {
	opts.FreeReset = true
	opts.LiteralClock = true
	opts.Clock = clock
	m, err := newModelShared(g, prog, opts)
	if err != nil {
		return nil, err
	}
	if m.clock != "" && m.clockIdx < 0 {
		// The harness would fail every cycle with "unknown signal"; there is
		// no circuit to build for that.
		return nil, unsupportedf("clock %q is not a design signal", m.clock)
	}
	d := prog.Design()
	c := &Circuit{G: g, Prog: prog, Clock: m.clock, Sigs: m.sigs}

	// Previous-state variables for the whole arena (dead ones — comb
	// signals recomputed before any read — simply go unused in the graph).
	st := &State{vals: make([]Vec, len(m.sigs)), mems: make([][]Vec, len(m.sigs))}
	c.State = make([]Vec, len(m.sigs))
	c.StateMem = make([][]Vec, len(m.sigs))
	for i, sv := range m.sigs {
		w := vecW(sv.Width)
		c.State[i] = g.VarVec(w)
		st.vals[i] = c.State[i]
		if sv.IsMem {
			c.StateMem[i] = make([]Vec, sv.Depth)
			st.mems[i] = make([]Vec, sv.Depth)
			for dw := 0; dw < sv.Depth; dw++ {
				c.StateMem[i][dw] = g.VarVec(w)
				st.mems[i][dw] = c.StateMem[i][dw]
			}
		}
	}

	// Input variables, shared by name when provided.
	for _, p := range m.free {
		idx, _ := d.SignalIndex(p.Name)
		c.Free = append(c.Free, p)
		c.FreeIdx = append(c.FreeIdx, idx)
		v := in[p.Name]
		if v == nil {
			v = g.VarVec(vecW(p.Width))
		}
		c.In = append(c.In, v)
	}

	// Replay one harness cycle symbolically — the exact phase schedule of
	// Model.Step — capturing the settle instant on the way.
	e := &sexec{m: m, st: st.clone()}
	for i, p := range m.free {
		e.st.vals[c.FreeIdx[i]] = g.Resize(c.In[i], vecW(p.Width))
	}
	if m.clockIdx < 0 {
		e.sweep()
		if e.err != nil {
			return nil, e.err
		}
		c.Settle, c.SettleMem = e.st.vals, e.st.mems
		c.Next, c.NextMem = e.st.vals, e.st.mems
		return c, nil
	}
	e.setClock(0)
	e.sweep()
	// Async-reset edge firing: the harness's first Settle() runs the comb
	// sweep, then the sequential processes whose reset-edge trigger fired
	// at input application, then commits their non-blocking writes and
	// resettles. The reset only changes at input-apply time under the
	// harness protocol, so a guarded firing here — guard = the old-versus-
	// new edge condition on the reset bit — is exact, per lane.
	if len(m.asyncs) > 0 {
		oldR := c.State[m.rstIdx][0]
		newR := e.st.vals[m.rstIdx][0]
		for _, ap := range m.asyncs {
			fired := g.And(oldR, newR.Not())
			if ap.pos {
				fired = g.And(oldR.Not(), newR)
			}
			pv := m.procs[ap.proc]
			e.execStmt(pv.Scope, pv.Body, fired)
		}
		e.commitNBA()
		e.sweep()
	}
	mid := e.st.clone()
	e.setClock(1)
	e.sweep()
	for _, pi := range m.posedge {
		e.runProc(m.procs[pi])
	}
	e.commitNBA()
	e.sweep()
	e.setClock(0)
	e.sweep()
	for _, pi := range m.negedge {
		e.runProc(m.procs[pi])
	}
	e.commitNBA()
	e.sweep()
	if e.err != nil {
		return nil, e.err
	}
	c.Settle, c.SettleMem = mid.vals, mid.mems
	c.Next, c.NextMem = e.st.vals, e.st.mems
	return c, nil
}
