package rtlgen

import (
	"errors"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
)

// FuzzBackendsAgree drives the generator with fuzzer-chosen seeds and
// requires the full differential contract on every generated design: both
// backends byte-identical on traces/VCD/coverage, the scheduling path
// matching the constructed flavor, and printer round-trip stability.
//
// Seed corpus: committed under testdata/fuzz/FuzzBackendsAgree. Run
// locally with:
//
//	go test ./internal/rtlgen -run=^$ -fuzz=FuzzBackendsAgree -fuzztime=30s
func FuzzBackendsAgree(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Add(int64(-1))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		d := Generate(seed)
		rep, err := DiffBackends(d.Source, d.Top, d.Clock, 25, seed)
		if err != nil {
			t.Fatalf("seed %d (%s): backends diverged: %v\n%s", seed, d.Flavor, err, d.Source)
		}
		if !rep.Elaborated {
			t.Fatalf("seed %d: generated design failed to elaborate\n%s", seed, d.Source)
		}
		if d.Flavor.WantsFallback() == rep.Levelized {
			t.Fatalf("seed %d: flavor %s but levelized=%v (reason %q)\n%s",
				seed, d.Flavor, rep.Levelized, rep.FallbackReason, d.Source)
		}
		if err := RoundTrip(d.Source); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}

// FuzzFormalAgreesWithSim is the formal engine's differential fuzz
// target: for a fuzzer-chosen generated design and faultgen mutant, the
// bounded-equivalence verdict must agree with simulation in both
// directions — a SAT verdict must replay as a concrete divergence at the
// predicted cycle, and an UNSAT-to-depth-k verdict must survive seeded
// random simulation probes of the same depth. Designs or mutants outside
// the bit-blastable subset (event-fallback flavors, budget-exhausted
// miters) are skipped: the backends oracle owns those.
//
// Seed corpus: committed under testdata/fuzz/FuzzFormalAgreesWithSim. Run
// locally with:
//
//	go test ./internal/rtlgen -run=^$ -fuzz=FuzzFormalAgreesWithSim -fuzztime=30s
func FuzzFormalAgreesWithSim(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, uint8(seed%4), uint8(0))
	}
	f.Add(int64(22), uint8(3), uint8(2))
	f.Add(int64(1<<33), uint8(1), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, classSel, mutSel uint8) {
		d := Generate(seed)
		if d.Flavor.WantsFallback() {
			return
		}
		classes := faultgen.FunctionalClasses()
		class := classes[int(classSel)%len(classes)]
		muts := faultgen.MutateSource(d.Source, class)
		if len(muts) == 0 {
			return
		}
		mu := muts[int(mutSel)%len(muts)]
		checked, _, _, err := formalAgreeMutant(d, mu.Source, 4)
		if err != nil {
			t.Fatalf("seed %d class %s (%s): formal disagreed with simulation: %v\n%s",
				seed, class, mu.Descr, err, d.Source)
		}
		_ = checked
	})
}

// FuzzInductionAgreesWithBMC is the k-induction soundness fuzz target:
// for a fuzzer-chosen generated design and faultgen mutant, the
// induction verdict at depth 4 is cross-examined with the strongest
// independent evidence available. An unbounded proof must survive plain
// BMC unrolled well past the induction base (depth 3k+2) and deeper
// random simulation probes; a refutation must match plain BMC's verdict
// and depth and replay in simulation. Any disagreement is an engine
// bug — most likely an unsound inductive step. Designs or mutants
// outside the bit-blastable subset are skipped.
//
// Seed corpus: committed under testdata/fuzz/FuzzInductionAgreesWithBMC.
// Run locally with:
//
//	go test ./internal/rtlgen -run=^$ -fuzz=FuzzInductionAgreesWithBMC -fuzztime=30s
func FuzzInductionAgreesWithBMC(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, uint8(seed%4), uint8(seed%3))
	}
	f.Add(int64(37), uint8(2), uint8(1))
	f.Add(int64(1<<35), uint8(0), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, classSel, mutSel uint8) {
		d := Generate(seed)
		if d.Flavor.WantsFallback() {
			return
		}
		classes := faultgen.FunctionalClasses()
		class := classes[int(classSel)%len(classes)]
		muts := faultgen.MutateSource(d.Source, class)
		if len(muts) == 0 {
			return
		}
		mu := muts[int(mutSel)%len(muts)]
		if err := inductionAgreesWithBMC(d, mu.Source, 4); err != nil {
			t.Fatalf("seed %d class %s (%s): induction disagreed with BMC/simulation: %v\n%s",
				seed, class, mu.Descr, err, d.Source)
		}
	})
}

// FuzzBitSimAgreesWithSim is the bit-parallel simulator's differential
// fuzz target: for a fuzzer-chosen generated design, lane count and
// cycle budget, psim's lane traces (bit-parallel or fallback, whichever
// path the design lands on) must stay byte-identical to a sim.Batch and
// to standalone harness runs — outputs, waveforms, VCD bytes and final
// state, with staggered lane retirement in the mix.
//
// Seed corpus: committed under testdata/fuzz/FuzzBitSimAgreesWithSim. Run
// locally with:
//
//	go test ./internal/rtlgen -run=^$ -fuzz=FuzzBitSimAgreesWithSim -fuzztime=30s
func FuzzBitSimAgreesWithSim(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, uint8(seed), uint8(16))
	}
	f.Add(int64(-1), uint8(65), uint8(3))
	f.Add(int64(1<<40), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, lanesSel, cyclesSel uint8) {
		d := Generate(seed)
		lanes := int(lanesSel)%12 + 1
		cycles := int(cyclesSel)%24 + 2
		if _, err := DiffBitSim(d.Source, d.Top, d.Clock, lanes, cycles, seed); err != nil {
			t.Fatalf("seed %d (%s) lanes %d cycles %d: bit-parallel diverged: %v\n%s",
				seed, d.Flavor, lanes, cycles, err, d.Source)
		}
	})
}

// FuzzParserRoundTrip feeds arbitrary text to the parser and requires that
// anything it accepts survives print->parse->print byte-identically (the
// printed form must reparse cleanly and be a fixpoint). Inputs the parser
// rejects are skipped — rejection is not a round-trip property.
//
// Seed corpus: every dataset module plus committed samples under
// testdata/fuzz/FuzzParserRoundTrip. Run locally with:
//
//	go test ./internal/rtlgen -run=^$ -fuzz=FuzzParserRoundTrip -fuzztime=30s
func FuzzParserRoundTrip(f *testing.F) {
	for _, m := range dataset.All() {
		f.Add(m.Source)
	}
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(Generate(seed).Source)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if err := RoundTrip(src); err != nil && !errors.Is(err, ErrUnparseable) {
			t.Fatalf("round-trip instability: %v", err)
		}
	})
}
