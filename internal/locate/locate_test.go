package locate

import (
	"strings"
	"testing"

	"uvllm/internal/sim"
	"uvllm/internal/verilog"
)

const sampleLog = `UVM_INFO @ 0: uvm_test_top.env [RNTST] running test on accu (seed 1)
UVM_ERROR @ 12: uvm_test_top.env.scoreboard [SCBD] mismatch signal=sum expected=0x1a actual=0x18
UVM_ERROR @ 12: uvm_test_top.env.scoreboard [SCBD] mismatch signal=carry expected=0x1 actual=0x0
UVM_ERROR @ 47: uvm_test_top.env.scoreboard [SCBD] mismatch signal=sum expected=0x2 actual=0x0
UVM_INFO @ 200: uvm_test_top.env.scoreboard [SCBD] pass_rate=93.00% (186/200) coverage=87.5%
`

func TestErrChk(t *testing.T) {
	w := sim.NewWaveform([]string{"a", "b"})
	for i := 0; i < 50; i++ {
		w.Record(map[string]uint64{"a": uint64(i), "b": uint64(2 * i)})
	}
	mt, ms, iv := ErrChk(sampleLog, w)
	if len(mt) != 2 || mt[0] != 12 || mt[1] != 47 {
		t.Errorf("MT = %v", mt)
	}
	if len(ms) != 2 || ms[0] != "sum" || ms[1] != "carry" {
		t.Errorf("MS = %v", ms)
	}
	if iv["a"] != 12 || iv["b"] != 24 {
		t.Errorf("IV = %v", iv)
	}
}

func TestErrChkNoMismatch(t *testing.T) {
	mt, ms, iv := ErrChk("UVM_INFO @ 0: all good", nil)
	if len(mt) != 0 || len(ms) != 0 || iv != nil {
		t.Errorf("got %v %v %v", mt, ms, iv)
	}
}

const dfgSrc = `module m(
    input clk,
    input rst_n,
    input [7:0] a,
    input [7:0] b,
    output reg [7:0] y
);
    wire [7:0] mid;
    wire [7:0] other;
    assign mid = a + b;
    assign other = a ^ b;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            y <= 8'd0;
        end else begin
            y <= mid;
        end
    end
endmodule
`

func TestBuildDFGAndSlice(t *testing.T) {
	f := verilog.MustParse(dfgSrc)
	g := BuildDFG(f)
	if len(g.Defs["y"]) != 2 {
		t.Fatalf("y has %d defs, want 2", len(g.Defs["y"]))
	}
	lines, expanded := g.Slice([]string{"y"}, 0)
	// y's defs on lines 14 and 16, mid's def on line 10. other (line 11)
	// must NOT be in the slice.
	want := map[int]bool{10: true, 14: true, 16: true}
	for _, ln := range lines {
		if ln == 11 {
			t.Error("slice included unrelated line 11 (other)")
		}
		delete(want, ln)
	}
	if len(want) != 0 {
		t.Errorf("slice missing lines %v; got %v", want, lines)
	}
	if len(expanded) != 1 || expanded[0] != "mid" {
		t.Errorf("expanded = %v, want [mid]", expanded)
	}
}

func TestSliceControlDependencies(t *testing.T) {
	f := verilog.MustParse(dfgSrc)
	g := BuildDFG(f)
	// rst_n is a control dependency of y; it has no defs (input) so it
	// contributes no lines but must not break traversal.
	lines, _ := g.Slice([]string{"y"}, 2)
	if len(lines) != 2 {
		t.Errorf("maxLines not respected: %v", lines)
	}
}

func TestDFGInstanceConnections(t *testing.T) {
	src := `module sub(input [7:0] p, output [7:0] q);
    assign q = p + 8'd1;
endmodule
module top(input [7:0] x, output [7:0] y);
    wire [7:0] m;
    sub u1 (.p(x), .q(m));
    assign y = m;
endmodule
`
	f := verilog.MustParse(src)
	g := BuildDFG(f)
	lines, expanded := g.Slice([]string{"y"}, 0)
	// The slice must pass through the instance boundary into sub.
	joined := strings.Trim(strings.Join(strings.Fields(strings.Trim(strings.Join(func() []string {
		var s []string
		for _, l := range lines {
			s = append(s, string(rune('0'+l)))
		}
		return s
	}(), " "), " ")), " "), " ")
	_ = joined
	if len(lines) < 3 {
		t.Errorf("slice too small across hierarchy: %v (expanded %v)", lines, expanded)
	}
	foundQ := false
	for _, e := range expanded {
		if e == "q" || e == "p" {
			foundQ = true
		}
	}
	if !foundQ {
		t.Errorf("expansion did not cross instance boundary: %v", expanded)
	}
}

func TestErrInfoFetchModes(t *testing.T) {
	w := sim.NewWaveform([]string{"a", "b"})
	for i := 0; i < 50; i++ {
		w.Record(map[string]uint64{"a": uint64(i), "b": 0})
	}
	log := `UVM_ERROR @ 12: uvm_test_top.env.scoreboard [SCBD] mismatch signal=y expected=0x1 actual=0x0`

	// Below threshold: MS mode only.
	info := ErrInfoFetch(dfgSrc, log, w, 1, 4)
	if info.SL || len(info.SuspiciousLines) != 0 {
		t.Errorf("iteration 1 should be MS-only: %+v", info)
	}
	text := info.Format(dfgSrc)
	if !strings.Contains(text, "mismatch signals: y") {
		t.Errorf("MS format missing signals:\n%s", text)
	}
	if strings.Contains(text, "suspicious lines") {
		t.Error("MS format leaked SL info")
	}

	// At threshold: SL mode.
	info = ErrInfoFetch(dfgSrc, log, w, 4, 4)
	if !info.SL || len(info.SuspiciousLines) == 0 {
		t.Fatalf("iteration 4 should include the slice: %+v", info)
	}
	text = info.Format(dfgSrc)
	if !strings.Contains(text, "suspicious lines") || !strings.Contains(text, "L") {
		t.Errorf("SL format missing lines:\n%s", text)
	}
}

func TestErrInfoFormatEmpty(t *testing.T) {
	info := ErrInfo{}
	if !strings.Contains(info.Format(""), "no scoreboard mismatches") {
		t.Error("empty info format wrong")
	}
}
