package core

import (
	"testing"

	"uvllm/internal/faultgen"
	"uvllm/internal/sim"
)

// TestVerifyThreadsStructuralCoverage checks the Options.Cover knob end
// to end: with it set the pipeline reports the best structural coverage
// its UVM runs observed, and with it clear (the default) nothing is
// collected.
func TestVerifyThreadsStructuralCoverage(t *testing.T) {
	f := pickFault(t, "counter_12bit", faultgen.FuncLogic)

	on := verifyFault(t, f, 1, Options{Cover: sim.CoverAll()})
	if on.StructCoverage <= 0 || on.StructCoverage > 100 {
		t.Fatalf("StructCoverage = %v with coverage enabled", on.StructCoverage)
	}
	// Port-level coverage is collected either way.
	if on.Coverage <= 0 {
		t.Fatalf("port coverage missing: %v", on.Coverage)
	}

	off := verifyFault(t, f, 1, Options{})
	if off.StructCoverage != 0 {
		t.Fatalf("StructCoverage = %v without the knob; want 0", off.StructCoverage)
	}
	// The knob is observational: it must not change the verification
	// verdict or the best pass rate.
	if on.Success != off.Success || on.PassRate != off.PassRate {
		t.Fatalf("coverage collection changed the outcome: success %v/%v pass %v/%v",
			on.Success, off.Success, on.PassRate, off.PassRate)
	}
}
