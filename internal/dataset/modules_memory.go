package dataset

func init() {
	register(&Module{
		Name: "ram_sp", Category: Memory, Top: "ram_sp",
		Clock: "clk", HasReset: false, Complexity: 2,
		Spec: `ram_sp is a 16-word by 8-bit single-port synchronous RAM. On a
rising clock edge, if we is high the word at addr is written with din.
The read port is synchronous: dout is registered and always presents the
word that was at addr before the edge (read-before-write behavior).`,
		Source: `module ram_sp(
    input clk,
    input we,
    input [3:0] addr,
    input [7:0] din,
    output reg [7:0] dout
);
    reg [7:0] mem [0:15];
    always @(posedge clk) begin
        if (we) begin
            mem[addr] <= din;
        end
        dout <= mem[addr];
    end
endmodule
`,
	})

	register(&Module{
		Name: "fifo_sync", Category: Memory, Top: "fifo_sync",
		Clock: "clk", HasReset: true, Complexity: 4,
		Spec: `fifo_sync is an 8-deep, 8-bit-wide synchronous FIFO with
wrap-around pointers. Writes occur on a rising edge when wr_en is high
and the FIFO is not full; reads advance the read pointer when rd_en is
high and the FIFO is not empty. dout combinationally presents the word
at the read pointer. full and empty are pointer-derived status flags.
rst_n is an active-low asynchronous reset clearing both pointers.`,
		Source: `module fifo_sync(
    input clk,
    input rst_n,
    input wr_en,
    input rd_en,
    input [7:0] din,
    output [7:0] dout,
    output full,
    output empty
);
    reg [7:0] mem [0:7];
    reg [3:0] wptr;
    reg [3:0] rptr;
    assign empty = (wptr == rptr) ? 1'b1 : 1'b0;
    assign full = ((wptr[3] != rptr[3]) && (wptr[2:0] == rptr[2:0])) ? 1'b1 : 1'b0;
    assign dout = mem[rptr[2:0]];
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            wptr <= 4'd0;
            rptr <= 4'd0;
        end else begin
            if (wr_en && !full) begin
                mem[wptr[2:0]] <= din;
                wptr <= wptr + 4'd1;
            end
            if (rd_en && !empty) begin
                rptr <= rptr + 4'd1;
            end
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "lifo_stack", Category: Memory, Top: "lifo_stack",
		Clock: "clk", HasReset: true, Complexity: 3,
		Spec: `lifo_stack is an 8-deep, 8-bit-wide hardware stack. On a
rising edge, push (when not full) stores din and increments the stack
pointer; otherwise pop (when not empty) decrements it. Push wins when
both are asserted. dout combinationally presents the top of stack (zero
when empty). full and empty reflect the pointer. rst_n is an active-low
asynchronous reset clearing the pointer.`,
		Source: `module lifo_stack(
    input clk,
    input rst_n,
    input push,
    input pop,
    input [7:0] din,
    output [7:0] dout,
    output full,
    output empty
);
    reg [7:0] mem [0:7];
    reg [3:0] sp;
    assign empty = (sp == 4'd0) ? 1'b1 : 1'b0;
    assign full = (sp == 4'd8) ? 1'b1 : 1'b0;
    assign dout = empty ? 8'd0 : mem[sp - 4'd1];
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            sp <= 4'd0;
        end else begin
            if (push && !full) begin
                mem[sp[2:0]] <= din;
                sp <= sp + 4'd1;
            end else if (pop && !empty) begin
                sp <= sp - 4'd1;
            end
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "shift_register", Category: Memory, Top: "shift_register",
		Clock: "clk", HasReset: true, Complexity: 2,
		Spec: `shift_register is an 8-bit bidirectional shift register. On a
rising clock edge with en high: when dir is 0 the register shifts left
(toward the MSB) taking sin into bit 0; when dir is 1 it shifts right
taking sin into bit 7. With en low the value holds. rst_n is an
active-low asynchronous reset clearing q.`,
		Source: `module shift_register(
    input clk,
    input rst_n,
    input en,
    input dir,
    input sin,
    output reg [7:0] q
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            q <= 8'd0;
        end else if (en) begin
            if (dir) begin
                q <= {sin, q[7:1]};
            end else begin
                q <= {q[6:0], sin};
            end
        end
    end
endmodule
`,
	})
}
