package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestSpanTree checks span nesting, run-id propagation, arg capture,
// ordering of Spans(), and End idempotence.
func TestSpanTree(t *testing.T) {
	tr := NewTracer("run-42")
	root := tr.Start("job")
	child := root.Child("iteration")
	child.SetArg("iter", "1")
	grand := child.Child("uvm_eval")
	grand.End()
	child.End()
	child.End() // idempotent
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["iteration"].Parent != byName["job"].ID {
		t.Fatal("iteration not parented to job")
	}
	if byName["uvm_eval"].Parent != byName["iteration"].ID {
		t.Fatal("uvm_eval not parented to iteration")
	}
	if byName["iteration"].Args["iter"] != "1" {
		t.Fatalf("args lost: %v", byName["iteration"].Args)
	}
	for _, s := range spans {
		if s.Args["run_id"] != "run-42" {
			t.Fatalf("run_id not propagated on %s: %v", s.Name, s.Args)
		}
	}
}

// TestNilTracer checks the whole tracing API is a no-op on nil
// receivers — the disabled fast path.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.SetArg("k", "v")
	child := sp.Child("y")
	child.End()
	sp.End()
	if tr.Spans() != nil || tr.RunID() != "" {
		t.Fatal("nil tracer recorded state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("nil-tracer trace not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("nil tracer emitted events: %v", events)
	}
}

// TestWriteChromeTrace checks the export is a valid trace_event array
// with complete-phase events, microsecond units, and parent links.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer("r")
	root := tr.Start("job")
	child := root.Child("phase")
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, e := range events {
		if e.Ph != "X" || e.Pid != 1 || e.Tid != 1 {
			t.Fatalf("bad event shape: %+v", e)
		}
	}
	var rootID string
	for _, e := range events {
		if e.Name == "job" {
			if e.Dur < 2000 { // >= 2ms in microseconds
				t.Fatalf("job dur = %v us, want >= 2000", e.Dur)
			}
			rootID = "1"
		}
	}
	for _, e := range events {
		if e.Name == "phase" && e.Args["parent_span"] != rootID {
			t.Fatalf("phase parent_span = %q, want %q", e.Args["parent_span"], rootID)
		}
	}
}

// TestSlowSpanHook checks the sampling slow-span log fires only for
// spans at or above the threshold, and OnEnd fires for all.
func TestSlowSpanHook(t *testing.T) {
	tr := NewTracer("r")
	tr.SlowSpan = 5 * time.Millisecond
	var slow, all []string
	tr.OnSlow = func(s SpanInfo) { slow = append(slow, s.Name) }
	tr.OnEnd = func(s SpanInfo) { all = append(all, s.Name) }

	fast := tr.Start("fast")
	fast.End()
	slowSp := tr.Start("slow")
	time.Sleep(6 * time.Millisecond)
	slowSp.End()

	if len(all) != 2 {
		t.Fatalf("OnEnd fired %d times, want 2", len(all))
	}
	if len(slow) != 1 || slow[0] != "slow" {
		t.Fatalf("OnSlow fired for %v, want [slow]", slow)
	}
}

// TestContextPropagation checks ContextWith/FromContext round-trips a
// span and degrades to nil safely.
func TestContextPropagation(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context produced a span")
	}
	tr := NewTracer("r")
	sp := tr.Start("job")
	ctx := ContextWith(context.Background(), sp)
	if FromContext(ctx) != sp {
		t.Fatal("span did not round-trip through context")
	}
	// A nil span in a context is fine and children of it are no-ops.
	ctx = ContextWith(context.Background(), nil)
	c := FromContext(ctx).Child("x")
	c.End()
	sp.End()
}
