package refmodel_test

import (
	"math/rand"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/lint"
	"uvllm/internal/refmodel"
	"uvllm/internal/sim"
)

// TestEveryModuleHasModel pins the dataset and model registries together.
func TestEveryModuleHasModel(t *testing.T) {
	mods := dataset.All()
	if len(mods) != 27 {
		t.Fatalf("dataset has %d modules, want 27", len(mods))
	}
	for _, m := range mods {
		if _, err := refmodel.New(m.Name); err != nil {
			t.Errorf("no reference model for %s: %v", m.Name, err)
		}
	}
	if got := len(refmodel.Names()); got != 27 {
		t.Errorf("refmodel registry has %d entries, want 27", got)
	}
}

// TestDatasetLintClean: the golden sources must produce zero diagnostics —
// they are the "verified projects" of the paper's benchmark.
func TestDatasetLintClean(t *testing.T) {
	for _, m := range dataset.All() {
		r := lint.Lint(m.Source)
		if len(r.Diags) != 0 {
			t.Errorf("%s: golden source lints dirty:\n%s", m.Name, r.Format())
		}
	}
}

// TestDatasetCategories checks the Table II grouping.
func TestDatasetCategories(t *testing.T) {
	counts := map[dataset.Category]int{}
	for _, m := range dataset.All() {
		counts[m.Category]++
	}
	want := map[dataset.Category]int{
		dataset.Arithmetic: 8, dataset.Control: 6,
		dataset.Memory: 4, dataset.Miscellaneous: 9,
	}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("category %s has %d modules, want %d", c, counts[c], n)
		}
	}
}

// TestCrossCheckGoldenVsModel drives every module and its reference model
// with identical random stimulus and requires bit-exact outputs on every
// cycle. This is the foundation the whole evaluation rests on: if the DUT
// source, the simulator and the model disagree on correct code, mismatch
// detection on faulty code is meaningless.
func TestCrossCheckGoldenVsModel(t *testing.T) {
	const cycles = 300
	for _, m := range dataset.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			s, err := sim.CompileAndNew(m.Source, m.Top)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			model, err := refmodel.New(m.Name)
			if err != nil {
				t.Fatal(err)
			}
			h := sim.NewHarness(s, m.Clock)
			rng := rand.New(rand.NewSource(7))

			for cycle := 0; cycle < cycles; cycle++ {
				in := map[string]uint64{}
				for _, p := range s.Design().Inputs() {
					if p.Name == m.Clock {
						continue
					}
					in[p.Name] = rng.Uint64() & ((1 << uint(p.Width)) - 1)
				}
				if m.HasReset {
					// Reset for the first two cycles and occasionally
					// mid-stream to exercise the reset path.
					if cycle < 2 || cycle%97 == 41 {
						in["rst_n"] = 0
					} else {
						in["rst_n"] = 1
					}
				}
				got, err := h.Cycle(in)
				if err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
				want := model.Step(in)
				for name, wv := range want {
					if got[name] != wv {
						t.Fatalf("cycle %d: output %s = %d, model says %d (inputs %v)",
							cycle, name, got[name], wv, in)
					}
				}
			}
		})
	}
}

// TestModelResetIdempotent: Reset must restore power-on behavior.
func TestModelResetIdempotent(t *testing.T) {
	for _, name := range refmodel.Names() {
		m1, _ := refmodel.New(name)
		m2, _ := refmodel.New(name)
		rng := rand.New(rand.NewSource(3))
		in := map[string]uint64{"rst_n": 1, "en": 1, "d": 5, "x": 1, "coin": 1,
			"we": 1, "addr": 2, "din": 9, "wr_en": 1, "push": 1, "sig": 1,
			"a": uint64(rng.Intn(256)), "b": 3, "sel": 1, "up": 1}
		for i := 0; i < 10; i++ {
			m1.Step(in)
		}
		m1.Reset()
		out1 := m1.Step(in)
		out2 := m2.Step(in)
		for k, v := range out2 {
			if out1[k] != v {
				t.Errorf("%s: after Reset, Step[%s] = %d, fresh model = %d", name, k, out1[k], v)
			}
		}
	}
}
