package uvm

import (
	"bytes"
	"testing"

	"uvllm/internal/psim"
	"uvllm/internal/sim"
)

// TestCoverageDirectedBitLanesNeedle: the bit-parallel scorer must beat
// the random baseline on the needle design under the same scalar cycle
// budget, on the engine path (the async-reset needle is in the subset).
func TestCoverageDirectedBitLanesNeedle(t *testing.T) {
	p := compileNeedle(t)
	if err := psim.Supported(p, "clk"); err != nil {
		t.Fatalf("needle design left the bit-parallel subset: %v", err)
	}
	cfg := StimConfig{Clock: "clk", Cycles: 120, Seed: 5, BitLanes: true}
	mr, err := CoverageRandom(p, StimConfig{Clock: "clk", Cycles: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	md, corpus, err := CoverageDirected(p, cfg) // dispatches to the bit scorer
	if err != nil {
		t.Fatal(err)
	}
	if md.Percent() <= mr.Percent() {
		t.Fatalf("bit-parallel directed %.2f%% must beat random %.2f%% on the needle design",
			md.Percent(), mr.Percent())
	}
	if len(corpus.Entries) == 0 {
		t.Fatal("bit-parallel directed run saved no coverage-raising snippets")
	}
	for _, e := range corpus.Entries {
		if e.Gain <= 0 || len(e.Vectors) == 0 {
			t.Fatalf("bad corpus entry: gain=%d vectors=%d", e.Gain, len(e.Vectors))
		}
	}
}

func TestCoverageDirectedBitLanesDeterministic(t *testing.T) {
	p := compileNeedle(t)
	cfg := StimConfig{Clock: "clk", Cycles: 60, Seed: 9, BitLanes: true, Lanes: 16}
	m1, c1, err := CoverageDirectedBitLanes(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, c2, err := CoverageDirectedBitLanes(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Encode(), m2.Encode()) {
		t.Fatal("bit-parallel directed run is not deterministic for a fixed seed")
	}
	if len(c1.Entries) != len(c2.Entries) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(c1.Entries), len(c2.Entries))
	}
}

// TestCoverageDirectedBitLanesBudget pins the scalar accounting: only
// the replayed winner cycles collect coverage, so the map carries
// exactly reset + Cycles samples of the always block's outer statement —
// identical to the random baseline, speculative lanes notwithstanding.
func TestCoverageDirectedBitLanesBudget(t *testing.T) {
	p := compileNeedle(t)
	cfg := StimConfig{Clock: "clk", Cycles: 37, Seed: 1, SnippetLen: 5, BitLanes: true}
	mr, err := CoverageRandom(p, StimConfig{Clock: "clk", Cycles: 37, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	md, _, err := CoverageDirectedBitLanes(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var randomSamples, bitSamples uint64
	for _, pt := range mr.Points() {
		if pt.Name == "p0.s1" {
			randomSamples = mr.Count(pt)
			bitSamples = md.Count(pt)
		}
	}
	if randomSamples == 0 || randomSamples != bitSamples {
		t.Fatalf("cycle budgets differ: random sampled %d, bit-parallel sampled %d", randomSamples, bitSamples)
	}
}

// TestCoverageDirectedBitLanesFallback: a design outside the subset (an
// edge trigger on a data strobe) must transparently take the sim.Batch
// scorer and still produce a coverage map under the batch budget rules.
func TestCoverageDirectedBitLanesFallback(t *testing.T) {
	src := `module ff(input clk, input strobe, input [3:0] d, output reg [3:0] q);
always @(posedge strobe) q <= d;
endmodule`
	p, err := sim.CompileSource(src, "ff", sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	if err := psim.Supported(p, "clk"); err == nil {
		t.Fatal("strobe design unexpectedly in the bit-parallel subset")
	}
	cfg := StimConfig{Clock: "clk", Cycles: 40, Seed: 3, BitLanes: true, Lanes: 4}
	m, _, err := CoverageDirectedBitLanes(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Percent() <= 0 {
		t.Fatalf("fallback run collected no coverage (%.2f%%)", m.Percent())
	}
}
