// Package psim is the bit-parallel ("P64") lane simulator: it evaluates
// up to 64 independent stimulus streams per machine word over the blasted
// single-cycle AIG of a compiled design. internal/formal's cycle circuit
// (formal.NewCircuit) replays the exact harness phase schedule — input
// apply, clock-low settle, posedge batch, NBA commit, negedge batch —
// into an and-inverter graph; psim compiles that graph into a
// straight-line word evaluator (AND = &, inversion = ^) and keeps the
// architectural state bit-sliced, so one sweep advances 64 lanes by one
// full cycle. Lane stimulus and recorded waveform rows cross between the
// lane-sliced and bit-sliced layouts through a 64x64 bit-matrix
// transpose, once per port per cycle.
//
// The subset discipline mirrors internal/formal: designs the bit-blaster
// cannot model (event-scheduler fallback, oversized memories, edge
// triggers on signals other than the clock and the conventional reset)
// are reported via formal.ErrUnsupported, and the Lanes
// wrapper falls back to sim.Batch transparently — callers get one API
// that is always correct and bit-parallel when possible. On the supported
// subset the traces are byte-identical to sim.Batch and the standalone
// Harness (enforced by rtlgen's DiffBitSim differential gate and fuzz
// target).
package psim

import (
	"fmt"

	"uvllm/internal/formal"
	"uvllm/internal/sim"
)

// ResetCycles is the reset preamble length of the differential protocol
// (ApplyReset(2)), shared with internal/formal.
const ResetCycles = formal.ResetCycles

// Supported reports whether p can run bit-parallel under the given clock
// name: nil, or a formal.ErrUnsupported-wrapped reason. It is the same
// check Lanes construction performs before falling back to sim.Batch.
func Supported(p *sim.Program, clock string) error {
	_, err := formal.NewCircuit(p, clock, formal.Options{})
	return err
}

// Lanes is the always-correct multi-lane front end: bit-parallel Engines
// (in chunks of up to 64 lanes) when the design is in the supported
// subset, a sim.Batch otherwise. The cycle protocol, row layout, waveform
// shape and per-lane observables are identical on both paths.
type Lanes struct {
	eng   []*Engine
	b     *sim.Batch
	lanes int
	ports []sim.PortInfo
}

// NewLanes builds a lane runner for `lanes` lanes of p under the given
// clock name (taken literally, as in sim.NewBatch). Designs outside the
// bit-parallel subset fall back to sim.Batch; a non-nil error means even
// the fallback could not be constructed.
func NewLanes(p *sim.Program, lanes int, clock string) (*Lanes, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("psim: lanes must be >= 1, got %d", lanes)
	}
	l := &Lanes{lanes: lanes}
	if err := Supported(p, clock); err == nil {
		for off := 0; off < lanes; off += 64 {
			n := lanes - off
			if n > 64 {
				n = 64
			}
			e, err := NewEngine(p, n, clock)
			if err != nil {
				l.eng = nil
				break
			}
			l.eng = append(l.eng, e)
		}
	}
	if l.eng == nil {
		b, err := sim.NewBatch(p, lanes, clock)
		if err != nil {
			return nil, err
		}
		l.b = b
		l.ports = b.Ports()
		return l, nil
	}
	l.ports = l.eng[0].Ports()
	return l, nil
}

// BitParallel reports which path the runner took: true for the
// bit-parallel engines, false for the sim.Batch fallback.
func (l *Lanes) BitParallel() bool { return l.b == nil }

// Lanes returns the lane count.
func (l *Lanes) Lanes() int { return l.lanes }

// Ports returns the row stimulus layout: the non-clock inputs in
// declaration order (identical on both paths).
func (l *Lanes) Ports() []sim.PortInfo { return l.ports }

// chunk locates lane k's engine and its local lane index.
func (l *Lanes) chunk(k int) (*Engine, int) {
	return l.eng[k/64], k % 64
}

// Cycle drives one cycle on every unmasked lane; rows[k] aligns with
// Ports(), nil masks lane k (it neither advances nor records).
func (l *Lanes) Cycle(rows [][]uint64) error {
	if len(rows) != l.lanes {
		return fmt.Errorf("psim: cycle: %d rows for %d lanes", len(rows), l.lanes)
	}
	if l.b != nil {
		return l.b.Cycle(rows)
	}
	for ci, e := range l.eng {
		if err := e.Cycle(rows[ci*64 : ci*64+e.Lanes()]); err != nil {
			return err
		}
	}
	return nil
}

// ApplyReset drives the conventional reset sequence on every lane,
// mirroring sim.Batch.ApplyReset.
func (l *Lanes) ApplyReset(cycles int) error {
	if l.b != nil {
		return l.b.ApplyReset(cycles)
	}
	for _, e := range l.eng {
		if err := e.ApplyReset(cycles); err != nil {
			return err
		}
	}
	return nil
}

// Wave returns lane k's recorded waveform.
func (l *Lanes) Wave(k int) *sim.Waveform {
	if l.b != nil {
		return l.b.Wave(k)
	}
	e, kk := l.chunk(k)
	return e.Wave(kk)
}

// Outputs samples lane k's top-level outputs without advancing time.
func (l *Lanes) Outputs(k int) map[string]uint64 {
	if l.b != nil {
		return l.b.Outputs(k)
	}
	e, kk := l.chunk(k)
	return e.Outputs(kk)
}

// Err returns the error that made lane k inert. Bit-parallel lanes cannot
// error on the supported subset, so the engine path always reports nil;
// the fallback path reports sim.Batch's per-lane errors.
func (l *Lanes) Err(k int) error {
	if l.b != nil {
		return l.b.Err(k)
	}
	return nil
}

// Get reads lane k's current value of a signal by name.
func (l *Lanes) Get(k int, name string) uint64 {
	if l.b != nil {
		return l.b.Lane(k).Get(name)
	}
	e, kk := l.chunk(k)
	return e.Get(kk, name)
}

// GetMem reads lane k's current value of one memory word.
func (l *Lanes) GetMem(k int, name string, word int) uint64 {
	if l.b != nil {
		return l.b.Lane(k).GetMem(name, word)
	}
	e, kk := l.chunk(k)
	return e.GetMem(kk, name, word)
}

// Run is the one-shot entry point: it builds a lane runner for one
// stimulus stream per lane, applies the differential reset preamble
// (ApplyReset(ResetCycles)), and drives every lane to the end of its
// stream. stim[k] is lane k's per-cycle rows aligned with Ports(); lanes
// may have different lengths — a lane whose stream is exhausted retires
// (its state freezes and it stops recording) while longer lanes continue.
// The returned runner holds every lane's waveform, outputs and final
// state, on whichever path (bit-parallel or fallback) was taken.
func Run(p *sim.Program, clock string, stim [][][]uint64) (*Lanes, error) {
	l, err := NewLanes(p, len(stim), clock)
	if err != nil {
		return nil, err
	}
	if err := l.ApplyReset(ResetCycles); err != nil {
		return nil, err
	}
	maxLen := 0
	for _, s := range stim {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	rows := make([][]uint64, len(stim))
	for c := 0; c < maxLen; c++ {
		for k, s := range stim {
			if c < len(s) {
				rows[k] = s[c]
			} else {
				rows[k] = nil // retired: shorter lanes don't pay for long ones
			}
		}
		if err := l.Cycle(rows); err != nil {
			return nil, err
		}
	}
	return l, nil
}
