package faultgen

import (
	"fmt"
	"sync"

	"uvllm/internal/dataset"
	"uvllm/internal/lint"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// Fault is one benchmark instance: a verified module with one injected
// error, plus the metadata the harness and the repair oracle need.
type Fault struct {
	ID      string // "<module>/<class>-<variant>"
	Module  string // dataset module name
	Class   Class
	Variant int
	Source  string // faulty source
	Golden  string // the verified source
	Descr   string // what was injected
}

// Meta returns the dataset module this fault was injected into.
func (f *Fault) Meta() *dataset.Module { return dataset.ByName(f.Module) }

// BenchmarkSize is the size of the released error dataset (paper: "331
// code instances with realistic errors").
const BenchmarkSize = 331

// Generate injects one fault class into a module, returning every
// applicable, validated variant. An empty result is an "×" cell of Fig. 7:
// the module's structure cannot express the class.
func Generate(m *dataset.Module, class Class) []*Fault {
	var out []*Fault
	seen := map[string]bool{m.Source: true}
	for i, mu := range mutate(m.Source, class) {
		if seen[mu.src] {
			continue
		}
		seen[mu.src] = true
		f := &Fault{
			ID:      fmt.Sprintf("%s/%s-%d", m.Name, class, i),
			Module:  m.Name,
			Class:   class,
			Variant: i,
			Source:  mu.src,
			Golden:  m.Source,
			Descr:   mu.descr,
		}
		if Effective(f) {
			out = append(out, f)
		}
	}
	return out
}

// Effective validates that the injected error is triggerable, enforcing
// the paper's "all errors are triggered during verification" property:
//
//   - a syntax-class fault must produce at least one linter error;
//   - a functional-class fault must parse, and must either be observed as
//     a mismatch by a high-coverage random testbench or be flagged by the
//     linter (declaration/timing misuses surface as lint findings that the
//     pre-processing stage repairs).
func Effective(f *Fault) bool {
	rep := lint.Lint(f.Source)
	if f.Class.IsSyntax() {
		return len(rep.Errors()) > 0
	}
	if hasSyntax(rep) {
		return false // functional fault must not break the syntax
	}
	if len(rep.Errors()) > 0 || len(rep.FocusedWarnings()) > 0 {
		return true
	}
	rate, err := observe(f)
	if err != nil {
		return true // simulation failure is certainly observable
	}
	return rate < 1.0
}

// observe runs the faulty source under the golden UVM testbench.
func observe(f *Fault) (float64, error) {
	m := f.Meta()
	env, err := uvm.NewEnv(uvm.Config{
		Source: f.Source, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 1,
	})
	if err != nil {
		return 0, err
	}
	return env.Run(randomSeq(env, 300)), nil
}

func randomSeq(env *uvm.Env, n int) *uvm.RandomSequence {
	var ports []sim.PortInfo
	for _, p := range env.DUT.Sim.Design().Inputs() {
		if p.Name == env.DUT.Clock {
			continue
		}
		ports = append(ports, p)
	}
	name, _ := sim.FindReset(env.DUT.Sim.Design())
	return &uvm.RandomSequence{Ports: ports, N: n, ResetName: name, ResetEvery: 50}
}

func hasSyntax(rep *lint.Report) bool {
	for _, d := range rep.Errors() {
		if d.Code == lint.CodeSyntax {
			return true
		}
	}
	return false
}

var (
	benchOnce sync.Once
	benchAll  []*Fault
)

// Benchmark generates the full error dataset: every validated variant of
// every class on every module, deterministically trimmed to BenchmarkSize
// while keeping at least one instance per non-empty (module, class) cell.
func Benchmark() []*Fault {
	benchOnce.Do(func() {
		var all []*Fault
		perCell := map[string][]*Fault{}
		var synCells, fnCells []string
		synAvail, fnAvail := 0, 0
		for _, m := range dataset.All() {
			for _, c := range Classes() {
				fs := Generate(m, c)
				if len(fs) == 0 {
					continue
				}
				key := m.Name + "/" + string(c)
				perCell[key] = fs
				if c.IsSyntax() {
					synCells = append(synCells, key)
					synAvail += len(fs)
				} else {
					fnCells = append(fnCells, key)
					fnAvail += len(fs)
				}
				all = append(all, fs...)
			}
		}
		if len(all) <= BenchmarkSize {
			benchAll = all
			return
		}
		// Composition target: the paper's aggregate fix rates (Table II
		// overall 79.75% vs 86.99% syntax / 71.92% functional) imply a
		// roughly 52/48 syntax/functional split of the 331 instances.
		targetFn := fnAvail
		if targetFn > 159 {
			targetFn = 159
		}
		targetSyn := BenchmarkSize - targetFn
		if targetSyn > synAvail {
			targetSyn = synAvail
			targetFn = BenchmarkSize - targetSyn
		}
		drop := map[*Fault]bool{}
		trim := func(cells []string, avail, target int) {
			for avail > target {
				trimmed := false
				for i := len(cells) - 1; i >= 0 && avail > target; i-- {
					fs := perCell[cells[i]]
					if len(fs) <= 1 {
						continue
					}
					drop[fs[len(fs)-1]] = true
					perCell[cells[i]] = fs[:len(fs)-1]
					avail--
					trimmed = true
				}
				if !trimmed {
					break
				}
			}
		}
		trim(synCells, synAvail, targetSyn)
		trim(fnCells, fnAvail, targetFn)
		for _, f := range all {
			if !drop[f] {
				benchAll = append(benchAll, f)
			}
		}
	})
	return benchAll
}

// BenchmarkByClass groups the benchmark by fault class.
func BenchmarkByClass() map[Class][]*Fault {
	out := map[Class][]*Fault{}
	for _, f := range Benchmark() {
		out[f.Class] = append(out[f.Class], f)
	}
	return out
}

// BenchmarkByModule groups the benchmark by module name.
func BenchmarkByModule() map[string][]*Fault {
	out := map[string][]*Fault{}
	for _, f := range Benchmark() {
		out[f.Module] = append(out[f.Module], f)
	}
	return out
}
