package formal

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"uvllm/internal/obs"
	"uvllm/internal/sim"
	"uvllm/internal/verilog"
)

// ErrUnsupported marks designs (or constructs) outside the bit-blastable
// subset. Callers treat it as "no formal verdict", not as a failure: the
// simulation oracles still cover these designs.
var ErrUnsupported = errors.New("formal: design not supported by the bit-blaster")

// unsupportedf wraps ErrUnsupported with a reason.
func unsupportedf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{ErrUnsupported}, args...)...)
}

// DefaultMaxMemBits bounds the total memory state a model may blast
// (every word of every memory becomes per-bit state).
const DefaultMaxMemBits = 4096

// ResetCycles is the reset preamble length of the formal stimulus
// protocol, matching the differential harness (ApplyReset(2)).
const ResetCycles = 2

// Options bound what the bit-blaster will attempt.
type Options struct {
	// MaxMemBits caps total blasted memory bits (0 = DefaultMaxMemBits).
	MaxMemBits int
	// Clock overrides the conventional clock-name guess (sim.FindClock);
	// equivalence callers pass the clock they drive the harness with.
	Clock string
	// MaxConflicts bounds each SAT solve (0 = unlimited); exceeding it
	// aborts the check with ErrBudget. The differential oracles use it to
	// skip deterministically the rare miters (deep multiplier/divider
	// cones) whose UNSAT proofs are out of a test budget's reach.
	MaxConflicts int
	// FreeReset, when set, leaves the conventional reset input free (a
	// per-cycle variable) instead of freezing it at its deasserted value.
	// Sequential processes that trigger on a reset edge are then recorded
	// as async procs: under the harness protocol the reset only changes at
	// input-apply time, so the cycle-circuit replay (NewCircuit) fires them
	// symbolically at the clock-low settle, guarded by the old-versus-new
	// edge condition — exact async-reset semantics at every observation
	// instant. The cycle-circuit consumers use FreeReset so every non-clock
	// input — the sim.Batch row layout — is a driven variable.
	FreeReset bool
	// LiteralClock, when set, takes Clock exactly as given — "" then means
	// "no clock", suppressing the conventional-name guess. This mirrors
	// the harness contract, where an empty clock name selects the
	// combinational protocol even when the design has a clk input.
	LiteralClock bool
	// FromScratch disables incremental solving in BMCEquivOpts: a fresh
	// solver and a fresh Tseitin conversion per depth, the PR-5 behavior.
	// Kept as the differential/benchmark twin of the incremental path.
	FromScratch bool
	// MinimizeCex shrinks SAT counterexamples before returning them:
	// re-solve under assumptions freezing the already-satisfying suffix
	// and greedily zeroing input bits, so the directed sequences replayed
	// on the simulators are near-minimal in weight. The unminimized trace
	// is preserved in EquivResult.RawCex.
	MinimizeCex bool
	// Ctx, when non-nil, is checked between unrolling depths: once it is
	// cancelled the check stops at the next depth boundary with
	// ErrCancelled (the SAT budget in flight finishes its depth first).
	// nil means run to completion.
	Ctx context.Context
	// Span, when non-nil, is the parent trace span of this check; each
	// solved depth records a child span ("bmc_depth", "induct_base",
	// "induct_step") carrying the depth and solver-call stats. nil (the
	// default) traces nothing and costs one nil check per depth.
	Span *obs.Span
}

// cancelled returns the cancellation error to surface at depth t, or
// nil to keep going.
func (o Options) cancelled(t int) error {
	if o.Ctx == nil || o.Ctx.Err() == nil {
		return nil
	}
	return fmt.Errorf("%w: depth %d: %v", ErrCancelled, t, o.Ctx.Err())
}

// ErrCancelled marks a check abandoned because Options.Ctx was
// cancelled: the verdict is unknown, exactly as with ErrBudget.
var ErrCancelled = errors.New("formal: check cancelled")

// ErrBudget marks a check abandoned on its MaxConflicts budget: the
// verdict is unknown, not UNSAT.
var ErrBudget = errors.New("formal: solver conflict budget exhausted")

// Model is the bit-blasted form of one compiled design: a symbolic
// transition function over an AIG, mirroring the simulator's cycle
// protocol phase by phase (inputs applied at clock low, a levelized sweep
// per phase, posedge processes, NBA commit, negedge processes, NBA
// commit). The clock is modeled by the phase structure; the reset input,
// when present, is frozen at its deasserted value — the protocol runs the
// concrete reset preamble first and explores only post-reset behavior.
type Model struct {
	g    *AIG
	prog *sim.Program
	d    *sim.Design

	clock    string
	clockIdx int // -1 when combinational
	frozen   map[int]uint64
	free     []sim.PortInfo // inputs driven with fresh variables per cycle
	outs     []sim.PortInfo
	outIdx   []int

	combOrder    []int
	posedge      []int
	negedge      []int
	procs        []sim.ProcView
	sigs         []sim.SignalView
	maxConflicts int

	// Async-reset bookkeeping (FreeReset only): the conventional reset's
	// arena index and the sequential processes with an edge trigger on it,
	// fired symbolically at the settle instant by the cycle-circuit replay.
	rstIdx int
	asyncs []asyncProc
}

// asyncProc is one sequential process with an edge trigger on the free
// reset: proc index plus the trigger polarity (true = posedge).
type asyncProc struct {
	proc int
	pos  bool
}

// State is one symbolic snapshot of the signal arena (and memories): the
// full mutable state of a simulator instance, as vectors of AIG literals.
type State struct {
	vals []Vec
	mems [][]Vec
}

// clone deep-copies the vectors' slices (literals are immutable).
func (st *State) clone() *State {
	n := &State{vals: make([]Vec, len(st.vals)), mems: make([][]Vec, len(st.mems))}
	for i, v := range st.vals {
		n.vals[i] = append(Vec(nil), v...)
	}
	for i, m := range st.mems {
		if m != nil {
			n.mems[i] = append([]Vec(nil), m...)
		}
	}
	return n
}

// NewModel bit-blasts a compiled program under default options.
func NewModel(prog *sim.Program) (*Model, error) {
	return NewModelOpts(prog, Options{})
}

// NewModelOpts bit-blasts a compiled program, sharing no AIG with other
// models. Use newModelShared for miters.
func NewModelOpts(prog *sim.Program, opts Options) (*Model, error) {
	return newModelShared(NewAIG(), prog, opts)
}

// newModelShared builds a model whose circuits live in the given AIG, so
// two models over the same graph can share input variables and structure.
func newModelShared(g *AIG, prog *sim.Program, opts Options) (*Model, error) {
	if prog.Backend() != sim.BackendCompiled {
		return nil, unsupportedf("requires the compiled backend")
	}
	if !prog.Levelized() {
		return nil, unsupportedf("not cleanly levelizable: %s", prog.FallbackReason())
	}
	maxMem := opts.MaxMemBits
	if maxMem == 0 {
		maxMem = DefaultMaxMemBits
	}
	d := prog.Design()
	clock := opts.Clock
	if clock == "" && !opts.LiteralClock {
		clock = sim.FindClock(d)
	}
	m := &Model{
		g:            g,
		prog:         prog,
		d:            d,
		clock:        clock,
		clockIdx:     -1,
		frozen:       map[int]uint64{},
		outs:         d.Outputs(),
		combOrder:    prog.CombOrder(),
		maxConflicts: opts.MaxConflicts,
		rstIdx:       -1,
	}
	if m.clock != "" {
		if idx, ok := d.SignalIndex(m.clock); ok {
			m.clockIdx = idx
		}
	}
	for i := 0; i < d.NumSignals(); i++ {
		m.sigs = append(m.sigs, d.Signal(i))
	}
	for i := 0; i < d.NumProcs(); i++ {
		m.procs = append(m.procs, d.Proc(i))
	}

	// The conventional reset: frozen at its deasserted value by default
	// (the protocol runs the concrete preamble and explores post-reset
	// behavior), a tracked free input under FreeReset.
	if rst, v := sim.FindResetDeassert(d); rst != "" {
		if idx, ok := d.SignalIndex(rst); ok {
			if opts.FreeReset {
				m.rstIdx = idx
			} else {
				m.frozen[idx] = v
			}
		}
	}
	for _, p := range d.Inputs() {
		idx, ok := d.SignalIndex(p.Name)
		if !ok {
			continue
		}
		if idx == m.clockIdx {
			continue
		}
		if _, fr := m.frozen[idx]; fr {
			continue
		}
		m.free = append(m.free, p)
	}
	for _, p := range m.outs {
		idx, _ := d.SignalIndex(p.Name)
		m.outIdx = append(m.outIdx, idx)
	}

	// Sequential triggers must be the clock or a frozen input: anything
	// else (derived clocks, data inputs) needs mid-settle edge semantics
	// the phase model does not reproduce.
	memBits := 0
	for _, sv := range m.sigs {
		if sv.IsMem {
			memBits += sv.Width * sv.Depth
		}
	}
	if memBits > maxMem {
		return nil, unsupportedf("memories total %d bits (cap %d)", memBits, maxMem)
	}
	for pi, pv := range m.procs {
		if pv.Kind != sim.ProcSeq {
			continue
		}
		for _, ed := range pv.Edges {
			if ed.Sig == m.clockIdx {
				continue
			}
			if _, fr := m.frozen[ed.Sig]; fr {
				continue // frozen signals never toggle: the edge cannot fire
			}
			if ed.Sig == m.rstIdx {
				// Free reset: the edge can only fire at input-apply time, so
				// the cycle-circuit replay reproduces it exactly with a
				// guarded firing at the settle instant.
				m.asyncs = append(m.asyncs, asyncProc{proc: pi, pos: ed.Pos})
				continue
			}
			return nil, unsupportedf("edge trigger on %s (only the clock and the reset are modeled)",
				m.sigs[ed.Sig].Name)
		}
	}
	if m.clockIdx >= 0 {
		m.posedge = d.EdgeProcsOf(m.clockIdx, true)
		m.negedge = d.EdgeProcsOf(m.clockIdx, false)
	} else {
		// No recognizable clock: sequential processes would never fire in
		// the harness protocol either, but a design that has them is
		// almost certainly mis-modeled — refuse.
		for _, pv := range m.procs {
			if pv.Kind == sim.ProcSeq {
				return nil, unsupportedf("sequential process but no conventional clock input")
			}
		}
	}
	return m, nil
}

// AIG returns the model's underlying graph.
func (m *Model) AIG() *AIG { return m.g }

// Clock returns the modeled clock input name ("" for combinational).
func (m *Model) Clock() string { return m.clock }

// FreeInputs returns the input ports driven with fresh variables each
// cycle (the clock and the frozen reset excluded).
func (m *Model) FreeInputs() []sim.PortInfo { return m.free }

// FrozenInputs returns the inputs held constant by the protocol and
// their values (the deasserted reset).
func (m *Model) FrozenInputs() map[string]uint64 {
	out := map[string]uint64{}
	for idx, v := range m.frozen {
		out[m.sigs[idx].Name] = v
	}
	return out
}

// Outputs returns the design's output ports.
func (m *Model) Outputs() []sim.PortInfo { return m.outs }

// InitState runs a concrete instance through the differential reset
// protocol (ApplyReset(ResetCycles), inputs at zero) and captures the
// settled arena as constant vectors — the shared, concrete starting point
// of every bounded unrolling and of its replay on a simulator.
func (m *Model) InitState() (*State, error) {
	inst, err := m.prog.NewInstance()
	if err != nil {
		return nil, fmt.Errorf("formal: init state: %w", err)
	}
	h := sim.NewHarness(inst, m.clock)
	if err := h.ApplyReset(ResetCycles); err != nil {
		return nil, fmt.Errorf("formal: init state: %w", err)
	}
	st := &State{vals: make([]Vec, len(m.sigs)), mems: make([][]Vec, len(m.sigs))}
	for i, sv := range m.sigs {
		w := vecW(sv.Width)
		st.vals[i] = m.g.ConstVec(inst.Get(sv.Name), w)
		if sv.IsMem {
			st.mems[i] = make([]Vec, sv.Depth)
			for d := 0; d < sv.Depth; d++ {
				st.mems[i][d] = m.g.ConstVec(inst.GetMem(sv.Name, d), w)
			}
		}
	}
	return st, nil
}

// FreshInputs allocates one cycle's worth of free input variables.
func (m *Model) FreshInputs() map[string]Vec {
	in := map[string]Vec{}
	for _, p := range m.free {
		in[p.Name] = m.g.VarVec(vecW(p.Width))
	}
	return in
}

// FreeState allocates a fully symbolic state: every signal and every
// memory word a fresh variable vector. This over-approximates the
// reachable state set — the starting point of a k-induction step window,
// whose combinational signals settle to consistent values after the
// first Step. Only the post-Step states of a free-state window may be
// observed or constrained; the free snapshot itself contains arbitrary
// (possibly inconsistent) combinational values.
func (m *Model) FreeState() *State {
	st := &State{vals: make([]Vec, len(m.sigs)), mems: make([][]Vec, len(m.sigs))}
	for i, sv := range m.sigs {
		w := vecW(sv.Width)
		st.vals[i] = m.g.VarVec(w)
		if sv.IsMem {
			st.mems[i] = make([]Vec, sv.Depth)
			for d := 0; d < sv.Depth; d++ {
				st.mems[i][d] = m.g.VarVec(w)
			}
		}
	}
	return st
}

// StateSignals returns the arena indices of the model's sequential state:
// every l-value of a sequential (clocked or async-reset) process plus
// every memory, sorted. These are the registers that carry information
// across cycles — the signals whose equality defines "same state" for
// k-induction's loop-free path constraints (combinational signals are
// functions of registers and inputs, so distinctness over registers
// suffices).
func (m *Model) StateSignals() []int {
	set := map[int]bool{}
	for _, pv := range m.procs {
		if pv.Kind != sim.ProcSeq {
			continue
		}
		collectLHS(pv.Body, pv.Scope, set)
	}
	for i, sv := range m.sigs {
		if sv.IsMem {
			set[i] = true
		}
	}
	idxs := make([]int, 0, len(set))
	for i := range set {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs
}

// collectLHS walks one statement tree recording every assigned signal's
// arena index.
func collectLHS(st verilog.Stmt, sc sim.ScopeView, set map[int]bool) {
	switch v := st.(type) {
	case nil, *verilog.NullStmt:
	case *verilog.Block:
		for _, sub := range v.Stmts {
			collectLHS(sub, sc, set)
		}
	case *verilog.Assign:
		collectLHSExpr(v.LHS, sc, set)
	case *verilog.If:
		collectLHS(v.Then, sc, set)
		collectLHS(v.Else, sc, set)
	case *verilog.Case:
		for i := range v.Items {
			collectLHS(v.Items[i].Body, sc, set)
		}
	case *verilog.For:
		if v.Init != nil {
			collectLHSExpr(v.Init.LHS, sc, set)
		}
		collectLHS(v.Body, sc, set)
		if v.Step != nil {
			collectLHSExpr(v.Step.LHS, sc, set)
		}
	}
}

// collectLHSExpr records the root identifiers of one l-value expression.
func collectLHSExpr(lhs verilog.Expr, sc sim.ScopeView, set map[int]bool) {
	switch l := lhs.(type) {
	case *verilog.Ident:
		if idx, ok := sc.Lookup(l.Name); ok {
			set[idx] = true
		}
	case *verilog.Index:
		collectLHSExpr(l.X, sc, set)
	case *verilog.PartSelect:
		collectLHSExpr(l.X, sc, set)
	case *verilog.Concat:
		for _, p := range l.Parts {
			collectLHSExpr(p, sc, set)
		}
	}
}

// OutputVec reads an output port's symbolic value from a state.
func (m *Model) OutputVec(st *State, i int) Vec { return st.vals[m.outIdx[i]] }

// OutputVecByName reads an output *port* by name. Unlike SignalVec it
// matches only the port list — the set a harness scoreboard observes —
// so a same-named internal signal can never stand in for a missing
// output in an equivalence miter.
func (m *Model) OutputVecByName(st *State, name string) (Vec, bool) {
	for i, p := range m.outs {
		if p.Name == name {
			return st.vals[m.outIdx[i]], true
		}
	}
	return nil, false
}

// SignalVec reads any signal's symbolic value from a state by name.
func (m *Model) SignalVec(st *State, name string) (Vec, bool) {
	idx, ok := m.d.SignalIndex(name)
	if !ok {
		return nil, false
	}
	return st.vals[idx], true
}

// Step advances the symbolic state by one harness cycle under the given
// stimulus (missing free inputs hold their previous value, mirroring a
// stimulus map without the key). It returns the post-cycle state — the
// instant the harness samples its waveform row.
func (m *Model) Step(st *State, in map[string]Vec) (*State, error) {
	e := &sexec{m: m, st: st.clone()}

	// Input application (clock low in the harness protocol).
	for _, p := range m.free {
		v, ok := in[p.Name]
		if !ok {
			continue
		}
		idx, _ := m.d.SignalIndex(p.Name)
		e.st.vals[idx] = m.g.Resize(v, vecW(p.Width))
	}
	for idx, v := range m.frozen {
		e.st.vals[idx] = m.g.ConstVec(v, vecW(m.sigs[idx].Width))
	}

	if m.clockIdx < 0 {
		e.sweep()
		return e.st, e.err
	}

	// Phase 1: clock low, combinational settle.
	e.setClock(0)
	e.sweep()
	// Phase 2: clock high — comb readers of the clock first, then the
	// posedge batch (no comb updates inside the batch, matching the event
	// queue), then the NBA commit, then resettle.
	e.setClock(1)
	e.sweep()
	for _, pi := range m.posedge {
		e.runProc(m.procs[pi])
	}
	e.commitNBA()
	e.sweep()
	// Phase 3: clock low again — negedge batch under the new state.
	e.setClock(0)
	e.sweep()
	for _, pi := range m.negedge {
		e.runProc(m.procs[pi])
	}
	e.commitNBA()
	e.sweep()
	return e.st, e.err
}

// vecW caps vector widths at the simulator's 64-bit arithmetic.
func vecW(w int) int {
	if w > 64 {
		return 64
	}
	return w
}

// --- symbolic executor -------------------------------------------------

// snba is one deferred (non-blocking) write: commit applies
// old &^ mask | val & mask per bit; memory writes carry the symbolic
// address. Conditional writes fold the branch guard into the mask, which
// makes an unexecuted write a no-op exactly like the event queue's
// absent entry.
type snba struct {
	sig   int
	isMem bool
	addr  Vec // nil for scalar targets
	mask  Vec
	val   Vec
}

type sexec struct {
	m   *Model
	st  *State
	nba []snba
	err error
}

func (e *sexec) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *sexec) g() *AIG { return e.m.g }

func (e *sexec) setClock(v uint64) {
	e.st.vals[e.m.clockIdx] = e.g().ConstVec(v, vecW(e.m.sigs[e.m.clockIdx].Width))
}

// sweep evaluates every combinational process once in the levelized
// topological order — the compiled backend's straight-line pass, which
// reaches the unique fixpoint of a clean design in one traversal.
func (e *sexec) sweep() {
	for _, pi := range e.m.combOrder {
		if e.err != nil {
			return
		}
		e.runProc(e.m.procs[pi])
	}
}

// runProc executes one process body (or connection assignment) under no
// guard.
func (e *sexec) runProc(p sim.ProcView) {
	if e.err != nil {
		return
	}
	if p.ConnRHS != nil {
		w := e.widthOfLHS(p.ConnLHS, p.ConnLHSScope)
		if rw := e.widthOf(p.ConnRHS, p.ConnRHSScope); rw > w {
			w = rw
		}
		v := e.eval(p.ConnRHS, p.ConnRHSScope, w)
		e.writeLHS(p.ConnLHS, p.ConnLHSScope, v, true, True)
		return
	}
	e.execStmt(p.Scope, p.Body, True)
}

// commitNBA applies the deferred writes in append order.
func (e *sexec) commitNBA() {
	g := e.g()
	for _, w := range e.nba {
		if w.isMem {
			words := e.st.mems[w.sig]
			width := len(w.mask)
			reach := wordsReachable(len(w.addr), len(words))
			for wi := 0; wi < reach; wi++ {
				hit := g.EqConst(w.addr, uint64(wi))
				if hit == False {
					continue
				}
				old := words[wi]
				nw := make(Vec, width)
				for b := 0; b < width; b++ {
					nw[b] = g.Mux(g.And(hit, w.mask[b]), w.val[b], old[b])
				}
				words[wi] = nw
			}
			continue
		}
		old := e.st.vals[w.sig]
		nw := make(Vec, len(old))
		for b := range old {
			nw[b] = g.Mux(w.mask[b], w.val[b], old[b])
		}
		e.st.vals[w.sig] = nw
	}
	e.nba = e.nba[:0]
}

// wordsReachable bounds the mux chain over a memory to the words a
// sel-width address can express.
func wordsReachable(selBits, depth int) int {
	if selBits >= 31 {
		return depth
	}
	if max := 1 << uint(selBits); max < depth {
		return max
	}
	return depth
}

// execStmt interprets one statement symbolically. guard is the
// path condition: writes outside the taken path must leave state intact,
// which the write helpers implement by muxing against the old value.
func (e *sexec) execStmt(sc sim.ScopeView, st verilog.Stmt, guard Lit) {
	if e.err != nil || guard == False {
		return
	}
	g := e.g()
	switch v := st.(type) {
	case nil, *verilog.NullStmt:
		return
	case *verilog.Block:
		for _, sub := range v.Stmts {
			e.execStmt(sc, sub, guard)
		}
	case *verilog.Assign:
		e.execAssign(sc, v, guard)
	case *verilog.If:
		c := g.RedOr(e.evalSelf(v.Cond, sc))
		e.execStmt(sc, v.Then, g.And(guard, c))
		if v.Else != nil {
			e.execStmt(sc, v.Else, g.And(guard, c.Not()))
		}
	case *verilog.Case:
		sel := e.evalSelf(v.Expr, sc)
		taken := False // some earlier arm matched
		var def verilog.Stmt
		for i := range v.Items {
			it := &v.Items[i]
			if it.Exprs == nil {
				def = it.Body
				continue
			}
			match := False
			for _, ex := range it.Exprs {
				lv := e.evalSelf(ex, sc)
				w := len(sel)
				if len(lv) > w {
					w = len(lv)
				}
				match = g.Or(match, g.EqVec(g.Resize(lv, w), g.Resize(sel, w)))
			}
			armGuard := g.And(match, taken.Not())
			e.execStmt(sc, it.Body, g.And(guard, armGuard))
			taken = g.Or(taken, match)
		}
		if def != nil {
			e.execStmt(sc, def, g.And(guard, taken.Not()))
		}
	case *verilog.For:
		// Loop control must be concrete (constant-foldable): the loop
		// variable is driven by the init/step assignments, which the AIG's
		// constant propagation keeps constant vectors.
		if guard != True {
			e.fail(unsupportedf("for loop under a symbolic branch (line %d)", v.Line))
			return
		}
		if v.Init != nil {
			e.execAssign(sc, v.Init, True)
		}
		for iter := 0; ; iter++ {
			if e.err != nil {
				return
			}
			if iter > 1<<16 {
				e.fail(fmt.Errorf("formal: for loop at line %d exceeded %d iterations", v.Line, 1<<16))
				return
			}
			cv, ok := g.ConstVal(e.evalSelf(v.Cond, sc))
			if !ok {
				e.fail(unsupportedf("for loop with symbolic condition (line %d)", v.Line))
				return
			}
			if cv == 0 {
				return
			}
			e.execStmt(sc, v.Body, True)
			if v.Step != nil {
				e.execAssign(sc, v.Step, True)
			}
		}
	default:
		e.fail(unsupportedf("statement %T", st))
	}
}

func (e *sexec) execAssign(sc sim.ScopeView, a *verilog.Assign, guard Lit) {
	if a == nil {
		return
	}
	w := e.widthOfLHS(a.LHS, sc)
	if rw := e.widthOf(a.RHS, sc); rw > w {
		w = rw
	}
	v := e.eval(a.RHS, sc, w)
	e.writeLHS(a.LHS, sc, v, a.Blocking, guard)
}

// writeLHS stores v into the l-value under the guard: blocking writes
// update the arena immediately (muxed against the old value), non-blocking
// writes append a deferred entry with the guard folded into its mask.
func (e *sexec) writeLHS(lhs verilog.Expr, sc sim.ScopeView, v Vec, blocking bool, guard Lit) {
	if e.err != nil {
		return
	}
	g := e.g()
	switch l := lhs.(type) {
	case *verilog.Ident:
		idx, ok := sc.Lookup(l.Name)
		if !ok {
			e.fail(fmt.Errorf("formal: assignment to undeclared %q (line %d)", l.Name, l.Line))
			return
		}
		w := vecW(e.m.sigs[idx].Width)
		nv := g.Resize(v, w)
		if blocking {
			e.st.vals[idx] = g.MuxVec(guard, nv, e.st.vals[idx])
		} else {
			e.nba = append(e.nba, snba{sig: idx, mask: guardMask(g, guard, w), val: nv})
		}

	case *verilog.Index:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			e.fail(unsupportedf("nested l-value at line %d", l.Line))
			return
		}
		idx, ok := sc.Lookup(id.Name)
		if !ok {
			e.fail(fmt.Errorf("formal: assignment to undeclared %q (line %d)", id.Name, id.Line))
			return
		}
		sel := e.evalSelf(l.Index, sc)
		si := e.m.sigs[idx]
		if si.IsMem {
			w := vecW(si.Width)
			nv := g.Resize(v, w)
			if blocking {
				words := e.st.mems[idx]
				reach := wordsReachable(len(sel), len(words))
				for wi := 0; wi < reach; wi++ {
					hit := g.And(guard, g.EqConst(sel, uint64(wi)))
					if hit == False {
						continue
					}
					words[wi] = g.MuxVec(hit, nv, words[wi])
				}
			} else {
				e.nba = append(e.nba, snba{sig: idx, isMem: true, addr: sel, mask: guardMask(g, guard, w), val: nv})
			}
			return
		}
		// Bit write: mask bit i = (sel == i) & guard; out-of-range indexes
		// write nothing (the simulator ignores them).
		w := vecW(si.Width)
		mask := make(Vec, w)
		val := make(Vec, w)
		bit := False
		if len(v) > 0 {
			bit = v[0]
		}
		reach := wordsReachable(len(sel), w)
		for i := 0; i < w; i++ {
			if i < reach {
				mask[i] = g.And(guard, g.EqConst(sel, uint64(i)))
			} else {
				mask[i] = False
			}
			val[i] = bit
		}
		if blocking {
			old := e.st.vals[idx]
			nw := make(Vec, w)
			for i := 0; i < w; i++ {
				nw[i] = g.Mux(mask[i], val[i], old[i])
			}
			e.st.vals[idx] = nw
		} else {
			e.nba = append(e.nba, snba{sig: idx, mask: mask, val: val})
		}

	case *verilog.PartSelect:
		id, ok := l.X.(*verilog.Ident)
		if !ok {
			e.fail(unsupportedf("nested l-value at line %d", l.Line))
			return
		}
		idx, ok := sc.Lookup(id.Name)
		if !ok {
			e.fail(fmt.Errorf("formal: assignment to undeclared %q (line %d)", id.Name, id.Line))
			return
		}
		msb, lsb, ok := e.constRange(l.MSB, l.LSB, sc)
		if !ok {
			e.fail(unsupportedf("non-constant part-select bounds (line %d)", l.Line))
			return
		}
		w := vecW(e.m.sigs[idx].Width)
		sw := int(msb-lsb) + 1
		nv := g.Resize(v, sw)
		if blocking {
			old := e.st.vals[idx]
			nw := append(Vec(nil), old...)
			for i := 0; i < sw; i++ {
				if bi := int(lsb) + i; bi < w {
					nw[bi] = g.Mux(guard, nv[i], old[bi])
				}
			}
			e.st.vals[idx] = nw
		} else {
			mask := g.ConstVec(0, w)
			val := g.ConstVec(0, w)
			for i := 0; i < sw; i++ {
				if bi := int(lsb) + i; bi < w {
					mask[bi] = guard
					val[bi] = nv[i]
				}
			}
			e.nba = append(e.nba, snba{sig: idx, mask: mask, val: val})
		}

	case *verilog.Concat:
		total := 0
		widths := make([]int, len(l.Parts))
		for i, part := range l.Parts {
			widths[i] = e.widthOfLHS(part, sc)
			total += widths[i]
		}
		vv := e.g().Resize(v, vecW(total))
		shift := total
		for i, part := range l.Parts {
			shift -= widths[i]
			pw := vecW(widths[i])
			pv := make(Vec, pw)
			for b := 0; b < pw; b++ {
				if shift+b < len(vv) {
					pv[b] = vv[shift+b]
				} else {
					pv[b] = False
				}
			}
			e.writeLHS(part, sc, pv, blocking, guard)
		}

	default:
		e.fail(unsupportedf("l-value %T", lhs))
	}
}

// guardMask is a width-w mask vector of the guard literal.
func guardMask(g *AIG, guard Lit, w int) Vec {
	out := make(Vec, w)
	for i := range out {
		out[i] = guard
	}
	return out
}

// constRange evaluates constant part-select bounds, normalized msb >= lsb.
func (e *sexec) constRange(msbE, lsbE verilog.Expr, sc sim.ScopeView) (msb, lsb int64, ok bool) {
	m, err1 := verilog.EvalConst(msbE, sc.Params())
	l, err2 := verilog.EvalConst(lsbE, sc.Params())
	if err1 != nil || err2 != nil || m < 0 || l < 0 {
		return 0, 0, false
	}
	if m < l {
		m, l = l, m
	}
	return m, l, true
}
