// Package obs is the process-wide observability layer: a metrics
// registry (counters, gauges, bounded histograms, all with label
// support and Prometheus text exposition), hierarchical tracing
// (obs.Span trees exportable as Chrome trace_event JSON) and the
// slow-span sampling hook behind cmd/uvllmd's profiling flags. It is
// built from the standard library only, like every subsystem in this
// repository, and it is designed to be provably free when disabled:
// every handle type (*Counter, *Gauge, *Histogram, *Tracer, *Span) is
// nil-safe, so instrumented hot paths pay one nil check when no
// registry or tracer is attached — a claim held by the
// BenchmarkSimCompiled / BenchmarkSimCompiledObs benchguard pair.
//
// The registry replaces the telemetry islands that grew per subsystem:
// sim.Cache/sim.DiskCache counter snapshots, formal.Solver work stats,
// and the service layer's bespoke latency samplers all surface through
// one Registry, scraped as JSON on /v1/metrics (byte-compatible with
// the pre-obs shape) and as Prometheus text on /metrics.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric or span annotation: a key/value pair. Metric
// series are identified by (name, ordered label set).
type Label struct {
	// Key is the label name.
	Key string
	// Value is the label value.
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is not
// usable — obtain handles from a Registry. A nil *Counter is a valid
// no-op handle: Add and Inc return immediately, which is the
// zero-overhead fast path instrumented hot loops rely on.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored — counters only go up). Safe
// on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a valid
// no-op handle.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bounded distribution metric: fixed cumulative bucket
// counts for Prometheus exposition plus a bounded ring of recent raw
// samples for percentile computation (the service layer's p50/p95/p99
// digests read the ring, so /v1/metrics keeps its exact-percentile
// semantics instead of bucket interpolation). NaN observations are
// rejected. A nil *Histogram is a valid no-op handle.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []uint64  // len(bounds)+1, non-cumulative per bucket
	sum    float64
	count  uint64

	samples []float64 // bounded ring of recent observations
	next    int       // ring cursor
	window  int       // ring capacity
}

// DefaultSampleWindow bounds the per-histogram raw-sample ring used for
// percentile digests; beyond it the oldest samples are overwritten, so
// percentiles reflect recent load.
const DefaultSampleWindow = 4096

// Observe records one sample. NaN is rejected (not counted anywhere).
// Safe on a nil receiver (no-op).
func (h *Histogram) Observe(x float64) {
	if h == nil || math.IsNaN(x) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x: le-bucket convention
	h.counts[i]++
	h.sum += x
	h.count++
	if len(h.samples) < h.window {
		h.samples = append(h.samples, x)
	} else {
		h.samples[h.next] = x
		h.next = (h.next + 1) % h.window
	}
	h.mu.Unlock()
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Samples returns a copy of the bounded recent-sample window, in no
// particular order (nil on a nil receiver). Percentile digests are
// computed from this window.
func (h *Histogram) Samples() []float64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.samples...)
}

// buckets returns (bounds, cumulative counts, sum, count) under the lock.
func (h *Histogram) buckets() ([]float64, []uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return append([]float64(nil), h.bounds...), cum, h.sum, h.count
}

// ExpBuckets returns n exponentially spaced histogram bounds starting at
// start and multiplying by factor: the conventional shape for latency
// and solver-work distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{1}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind discriminates the registry's family types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// family is one registered metric name: its kind, help text and series
// keyed by rendered label set.
type family struct {
	kind   metricKind
	help   string
	bounds []float64 // histogram families only
	series map[string]*series
}

type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// Registry is a process-wide metric registry. Handles are created once
// (Counter/Gauge/Histogram return the same handle for the same name and
// label set) and incremented lock-free on hot paths; Snapshot and
// WritePrometheus render a deterministic view. A nil *Registry is the
// disabled fast path: every handle constructor returns nil, and nil
// handles no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// seriesKey renders an ordered label set into a map key.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

// sortLabels returns a copy of labels sorted by key (metric identity is
// order-independent).
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns (creating if needed) the series for (name, labels),
// checking kind consistency. Called with r.mu held by the public
// constructors.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{kind: kind, help: help, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	key := seriesKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			b := f.bounds
			s.h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1), window: DefaultSampleWindow}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter handle for (name, labels), registering it
// on first use. The same arguments always return the same handle. Nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge handle for (name, labels), registering it on
// first use. Nil registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// GaugeFunc registers a gauge series whose value is pulled from fn at
// snapshot/exposition time — the adapter for subsystems that already
// keep consistent counters behind their own locks (sim.Cache.Stats,
// uvm.TraceMemo.Stats, the runner's queue depths): the registry never
// duplicates their state, it reads the documented snapshot at scrape.
// Re-registering the same (name, labels) replaces the function. No-op
// on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	labels = sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookup(name, help, kindGaugeFunc, nil, labels).fn = fn
}

// Histogram returns the histogram handle for (name, labels) with the
// given bucket upper bounds (ascending; a +Inf bucket is implicit),
// registering it on first use. Bounds are fixed by the first
// registration of the name. Nil registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookup(name, help, kindHistogram, bounds, labels).h
}

// SeriesSnapshot is one series of a metric in a Snapshot.
type SeriesSnapshot struct {
	// Labels is the ordered label set identifying the series.
	Labels []Label
	// Value is the counter or gauge value (counters as float64).
	Value float64
	// Bounds are the histogram bucket upper bounds (histograms only).
	Bounds []float64
	// Cumulative are the cumulative bucket counts aligned with Bounds
	// plus a final +Inf entry (histograms only).
	Cumulative []uint64
	// Sum is the histogram sample sum.
	Sum float64
	// Count is the histogram observation count.
	Count uint64
}

// MetricSnapshot is one metric family in a Snapshot.
type MetricSnapshot struct {
	// Name is the metric name.
	Name string
	// Kind is "counter", "gauge" or "histogram".
	Kind string
	// Help is the registration help text.
	Help string
	// Series are the family's series, sorted by label set.
	Series []SeriesSnapshot
}

// Snapshot returns a deterministic point-in-time view of every
// registered metric: families sorted by name, series sorted by label
// set, gauge functions evaluated at call time. Tests compare snapshots
// directly. Nil registry returns nil.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	type seriesRef struct {
		key string
		s   *series
	}
	fams := make(map[string]*family, len(r.families))
	refs := make(map[string][]seriesRef, len(r.families))
	for n, f := range r.families {
		fams[n] = f
		for k, s := range f.series {
			refs[n] = append(refs[n], seriesRef{key: k, s: s})
		}
		sort.Slice(refs[n], func(i, j int) bool { return refs[n][i].key < refs[n][j].key })
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(names))
	for _, n := range names {
		f := fams[n]
		ms := MetricSnapshot{Name: n, Kind: f.kind.String(), Help: f.help}
		for _, ref := range refs[n] {
			ss := SeriesSnapshot{Labels: ref.s.labels}
			switch f.kind {
			case kindCounter:
				ss.Value = float64(ref.s.c.Value())
			case kindGauge:
				ss.Value = ref.s.g.Value()
			case kindGaugeFunc:
				if ref.s.fn != nil {
					ss.Value = ref.s.fn()
				}
			case kindHistogram:
				bounds, cum, sum, count := ref.s.h.buckets()
				ss.Bounds, ss.Cumulative, ss.Sum, ss.Count = bounds, cum, sum, count
			}
			ms.Series = append(ms.Series, ss)
		}
		out = append(out, ms)
	}
	return out
}
