package dataset

import (
	"strings"
	"testing"

	"uvllm/internal/verilog"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 27 {
		t.Fatalf("registry has %d modules, want 27", len(all))
	}
	if len(Names()) != 27 {
		t.Fatal("Names() size mismatch")
	}
	for _, m := range all {
		if ByName(m.Name) != m {
			t.Errorf("ByName(%q) broken", m.Name)
		}
	}
	if ByName("no_such_module") != nil {
		t.Error("ByName of unknown must be nil")
	}
	for _, c := range Categories() {
		if len(ByCategory(c)) == 0 {
			t.Errorf("category %s empty", c)
		}
	}
}

func TestModuleMetadataConsistent(t *testing.T) {
	for _, m := range All() {
		if strings.TrimSpace(m.Spec) == "" {
			t.Errorf("%s: empty specification", m.Name)
		}
		if !strings.Contains(m.Spec, m.Name) {
			t.Errorf("%s: specification does not name the module", m.Name)
		}
		if m.Complexity < 1 || m.Complexity > 5 {
			t.Errorf("%s: complexity %d out of range", m.Name, m.Complexity)
		}
		f := verilog.MustParse(m.Source)
		top := f.Module(m.Top)
		if top == nil {
			t.Fatalf("%s: top module %q not in source", m.Name, m.Top)
		}
		if m.Clock != "" {
			p := top.Port(m.Clock)
			if p == nil || p.Dir != verilog.DirInput {
				t.Errorf("%s: clock %q is not an input port", m.Name, m.Clock)
			}
			// Clocked modules must have an edge-triggered always block.
			edged := false
			for _, it := range top.Items {
				if ab, ok := it.(*verilog.AlwaysBlock); ok && ab.Sens.Edged() {
					edged = true
				}
			}
			if !edged {
				t.Errorf("%s: clocked but no edged always block", m.Name)
			}
		}
		if m.HasReset {
			if top.Port("rst_n") == nil {
				t.Errorf("%s: HasReset but no rst_n port", m.Name)
			}
			if !strings.Contains(m.Source, "negedge rst_n") {
				t.Errorf("%s: reset not asynchronous active-low", m.Name)
			}
		}
		if m.IsFSM && m.Category != Control {
			t.Errorf("%s: FSMs belong to the Control group", m.Name)
		}
	}
}

func TestModulesHaveOutputs(t *testing.T) {
	for _, m := range All() {
		f := verilog.MustParse(m.Source)
		top := f.Module(m.Top)
		if len(top.OutputPorts()) == 0 {
			t.Errorf("%s: no outputs to verify", m.Name)
		}
		if len(top.InputPorts()) == 0 {
			t.Errorf("%s: no inputs to stimulate", m.Name)
		}
	}
}

func TestSignalWidthsWithinSimulatorLimit(t *testing.T) {
	for _, m := range All() {
		f := verilog.MustParse(m.Source)
		for _, mod := range f.Modules {
			env, err := verilog.ModuleParams(mod)
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			for _, p := range mod.Ports {
				if w, err := verilog.RangeWidth(p.Range, env); err != nil || w > 64 {
					t.Errorf("%s: port %s width %d err=%v", m.Name, p.Name, w, err)
				}
			}
		}
	}
}
