// localization: demonstrate the post-processing engine of Algorithm 2 —
// parse mismatch records out of a UVM log, read input values from the
// waveform at the mismatch time, and compute the dynamic slice (suspicious
// lines) over the data-flow graph.
//
//	go run ./examples/localization
package main

import (
	"fmt"
	"strings"

	"uvllm/internal/dataset"
	"uvllm/internal/locate"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

func main() {
	m := dataset.ByName("fifo_sync")

	// Break the FIFO's full flag: compare only the pointer low bits.
	buggy := strings.Replace(m.Source,
		"(wptr[3] != rptr[3]) && (wptr[2:0] == rptr[2:0])",
		"(wptr[3] != rptr[3]) || (wptr[2:0] == rptr[2:0])", 1)

	env, err := uvm.NewEnv(uvm.Config{
		Source: buggy, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 9,
	})
	if err != nil {
		panic(err)
	}
	var ports []sim.PortInfo
	for _, p := range env.DUT.Sim.Design().Inputs() {
		if p.Name == m.Clock {
			continue
		}
		ports = append(ports, p)
	}
	rate := env.Run(&uvm.RandomSequence{Ports: ports, N: 300, ResetName: "rst_n"})
	fmt.Printf("buggy FIFO pass rate: %.1f%%\n\n", rate*100)

	// Algorithm 2, ErrChk: mismatch timestamps, signals, input values.
	mt, ms, iv := locate.ErrChk(env.Log(), env.Waveform())
	fmt.Printf("mismatch timestamps (MT): %v...\n", head(mt, 6))
	fmt.Printf("mismatch signals   (MS): %v\n", ms)
	fmt.Printf("input values at MT[0] (IV): %v\n\n", iv)

	// Algorithm 2, ErrInfoFetch in SL mode: the dynamic slice.
	info := locate.ErrInfoFetch(buggy, env.Log(), env.Waveform(), 4, 4)
	fmt.Println("repair-prompt error information (SL mode):")
	fmt.Println(info.Format(buggy))
}

func head(xs []int, n int) []int {
	if len(xs) < n {
		return xs
	}
	return xs[:n]
}
