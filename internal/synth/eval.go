package synth

import "fmt"

// State is the register file of a synthesized design.
type State map[string]uint64

// InitialState returns the registers at their init values.
func (n *Netlist) InitialState() State {
	st := State{}
	for _, r := range n.Regs {
		st[r.Name] = r.Init
	}
	return st
}

// evalAll computes every node value given register state and inputs.
// Nodes are in topological order by construction.
func (n *Netlist) evalAll(st State, in map[string]uint64) ([]uint64, error) {
	vals := make([]uint64, len(n.Nodes))
	for _, nd := range n.Nodes {
		v, err := n.evalNode(nd, vals, st, in)
		if err != nil {
			return nil, err
		}
		vals[nd.ID] = v
	}
	return vals, nil
}

func (n *Netlist) evalNode(nd *Node, vals []uint64, st State, in map[string]uint64) (uint64, error) {
	m := maskW(nd.Width)
	arg := func(i int) uint64 { return vals[nd.Args[i]] }
	switch nd.Kind {
	case OpConst:
		return nd.Value & m, nil
	case OpInput:
		return in[nd.Name] & m, nil
	case OpReg:
		return st[nd.Name] & m, nil
	case OpAdd:
		return (arg(0) + arg(1)) & m, nil
	case OpSub:
		return (arg(0) - arg(1)) & m, nil
	case OpMul:
		return (arg(0) * arg(1)) & m, nil
	case OpDiv:
		if arg(1) == 0 {
			return 0, nil
		}
		return (arg(0) / arg(1)) & m, nil
	case OpMod:
		if arg(1) == 0 {
			return 0, nil
		}
		return (arg(0) % arg(1)) & m, nil
	case OpAnd:
		return arg(0) & arg(1) & m, nil
	case OpOr:
		return (arg(0) | arg(1)) & m, nil
	case OpXor:
		return (arg(0) ^ arg(1)) & m, nil
	case OpXnor:
		return (^(arg(0) ^ arg(1))) & m, nil
	case OpNot:
		return (^arg(0)) & m, nil
	case OpNeg:
		return (-arg(0)) & m, nil
	case OpRedAnd:
		w := n.Nodes[nd.Args[0]].Width
		return b2u(arg(0) == maskW(w)), nil
	case OpRedOr:
		return b2u(arg(0) != 0), nil
	case OpRedXor:
		return uint64(popcount(arg(0)) & 1), nil
	case OpLogAnd:
		return b2u(arg(0) != 0 && arg(1) != 0), nil
	case OpLogOr:
		return b2u(arg(0) != 0 || arg(1) != 0), nil
	case OpLogNot:
		return b2u(arg(0) == 0), nil
	case OpEq:
		return b2u(arg(0) == arg(1)), nil
	case OpNe:
		return b2u(arg(0) != arg(1)), nil
	case OpLt:
		return b2u(arg(0) < arg(1)), nil
	case OpLe:
		return b2u(arg(0) <= arg(1)), nil
	case OpGt:
		return b2u(arg(0) > arg(1)), nil
	case OpGe:
		return b2u(arg(0) >= arg(1)), nil
	case OpShl:
		sh := arg(1)
		if sh >= 64 {
			return 0, nil
		}
		return (arg(0) << sh) & m, nil
	case OpShr:
		sh := arg(1)
		if sh >= 64 {
			return 0, nil
		}
		return (arg(0) >> sh) & m, nil
	case OpMux:
		if arg(0) != 0 {
			return arg(1) & m, nil
		}
		return arg(2) & m, nil
	case OpConcat:
		var out uint64
		for i, a := range nd.Args {
			w := n.Nodes[a].Width
			out = (out << uint(w)) | (vals[a] & maskW(w))
			_ = i
		}
		return out & m, nil
	case OpSlice:
		return (arg(0) >> uint(nd.Lo)) & maskW(nd.Hi-nd.Lo+1), nil
	}
	return 0, fmt.Errorf("synth: cannot evaluate node kind %v", nd.Kind)
}

// Step advances the design one clock cycle: inputs are applied, registers
// update through their next-state functions, and the post-edge outputs
// are returned along with the new state (matching the cycle protocol of
// sim.Harness and refmodel.Model).
func (n *Netlist) Step(st State, in map[string]uint64) (map[string]uint64, State, error) {
	vals, err := n.evalAll(st, in)
	if err != nil {
		return nil, nil, err
	}
	next := State{}
	for _, r := range n.Regs {
		w := n.Nodes[r.Node].Width
		next[r.Name] = vals[r.Next] & maskW(w)
	}
	// Post-edge combinational settle.
	vals2, err := n.evalAll(next, in)
	if err != nil {
		return nil, nil, err
	}
	outs := map[string]uint64{}
	for name, id := range n.Outputs {
		outs[name] = vals2[id]
	}
	return outs, next, nil
}

// EvalComb evaluates a purely combinational design (no registers).
func (n *Netlist) EvalComb(in map[string]uint64) (map[string]uint64, error) {
	vals, err := n.evalAll(State{}, in)
	if err != nil {
		return nil, err
	}
	outs := map[string]uint64{}
	for name, id := range n.Outputs {
		outs[name] = vals[id]
	}
	return outs, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func popcount(v uint64) int {
	c := 0
	for v != 0 {
		v &= v - 1
		c++
	}
	return c
}
