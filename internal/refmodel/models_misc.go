package refmodel

import "math/bits"

func init() {
	register("mux4", func() Model { return combModel(mux4) })
	register("demux4", func() Model { return combModel(demux4) })
	register("decoder3to8", func() Model { return combModel(decoder3to8) })
	register("priority_encoder", func() Model { return combModel(prioEnc) })
	register("comparator_4bit", func() Model { return combModel(comp4) })
	register("parity_gen", func() Model { return combModel(parityGen) })
	register("gray_code", func() Model { return combModel(grayCode) })
	register("edge_detector", func() Model { return &edgeDetModel{} })
	register("clk_divider", func() Model { return &clkDivModel{} })
}

func mux4(in map[string]uint64) map[string]uint64 {
	var y uint64
	switch in["sel"] & 3 {
	case 0:
		y = in["d0"]
	case 1:
		y = in["d1"]
	case 2:
		y = in["d2"]
	default:
		y = in["d3"]
	}
	return map[string]uint64{"y": mask(y, 8)}
}

func demux4(in map[string]uint64) map[string]uint64 {
	out := map[string]uint64{"y0": 0, "y1": 0, "y2": 0, "y3": 0}
	d := mask(in["d"], 8)
	switch in["sel"] & 3 {
	case 0:
		out["y0"] = d
	case 1:
		out["y1"] = d
	case 2:
		out["y2"] = d
	default:
		out["y3"] = d
	}
	return out
}

func decoder3to8(in map[string]uint64) map[string]uint64 {
	if in["en"] == 0 {
		return map[string]uint64{"y": 0}
	}
	return map[string]uint64{"y": mask(1<<(in["a"]&7), 8)}
}

func prioEnc(in map[string]uint64) map[string]uint64 {
	v := mask(in["in"], 8)
	if v == 0 {
		return map[string]uint64{"out": 0, "valid": 0}
	}
	return map[string]uint64{"out": uint64(bits.Len64(v) - 1), "valid": 1}
}

func comp4(in map[string]uint64) map[string]uint64 {
	a, b := mask(in["a"], 4), mask(in["b"], 4)
	return map[string]uint64{"gt": b2u(a > b), "eq": b2u(a == b), "lt": b2u(a < b)}
}

func parityGen(in map[string]uint64) map[string]uint64 {
	even := uint64(bits.OnesCount64(mask(in["data"], 8)) & 1)
	if in["odd_sel"] != 0 {
		return map[string]uint64{"parity": even ^ 1}
	}
	return map[string]uint64{"parity": even}
}

func grayCode(in map[string]uint64) map[string]uint64 {
	b := mask(in["bin"], 4)
	return map[string]uint64{"gray": b ^ (b >> 1)}
}

type edgeDetModel struct {
	prev uint64
	rise uint64
	fall uint64
}

func (m *edgeDetModel) Reset() { m.prev, m.rise, m.fall = 0, 0, 0 }

func (m *edgeDetModel) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.prev, m.rise, m.fall = 0, 0, 0
	} else {
		sig := in["sig"] & 1
		m.rise = sig &^ m.prev
		m.fall = m.prev &^ sig
		m.prev = sig
	}
	return map[string]uint64{"rise": m.rise, "fall": m.fall}
}

type clkDivModel struct {
	cnt uint64
}

func (m *clkDivModel) Reset() { m.cnt = 0 }

func (m *clkDivModel) Step(in map[string]uint64) map[string]uint64 {
	if in["rst_n"] == 0 {
		m.cnt = 0
	} else {
		m.cnt = mask(m.cnt+1, 3)
	}
	return map[string]uint64{
		"div2": m.cnt & 1,
		"div4": (m.cnt >> 1) & 1,
		"div8": (m.cnt >> 2) & 1,
	}
}
