// Command uvllm runs the UVLLM verification pipeline on one DUT: it lints,
// pre-processes, tests under the UVM environment and repairs iteratively,
// printing the verdict and the stage log.
//
// The repository is offline, so the LLM agent is the calibrated oracle
// described in DESIGN.md. Two usage modes:
//
//	uvllm -module counter_12bit -inject FuncLogic     # inject + repair
//	uvllm -module counter_12bit -file my_counter.v    # verify your file
//
// In both modes the specification, reference model and clocking come from
// the named benchmark module. With -formal, a successful verification is
// additionally checked by the formal engine: the delivered source must be
// provably equivalent to the golden for every post-reset stimulus up to
// -formal-depth cycles (refutations print a replayable counterexample and
// fail the run).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uvllm/internal/core"
	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/formal"
	"uvllm/internal/lint"
	"uvllm/internal/llm"
	"uvllm/internal/sim"
	"uvllm/internal/synth"
	"uvllm/internal/uvm"
)

func main() {
	var (
		modName  = flag.String("module", "counter_12bit", "benchmark module name (see -list)")
		inject   = flag.String("inject", "", "fault class to inject (e.g. FuncLogic, SynKeywordTypo)")
		variant  = flag.Int("variant", 0, "fault variant index")
		file     = flag.String("file", "", "verify this Verilog file instead of injecting")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		mode     = flag.String("mode", "pair", "repair generation form: pair or complete")
		backend  = flag.String("backend", "compiled", "simulation backend: compiled or event")
		cov      = flag.Bool("cover", false, "collect structural coverage (statements, branches, toggles, FSM) during UVM runs")
		useForm  = flag.Bool("formal", false, "after verification, bounded-prove the final source equivalent to the golden (refutation fails the run)")
		formDep  = flag.Int("formal-depth", 0, "formal unrolling depth in cycles (0 = default)")
		list     = flag.Bool("list", false, "list benchmark modules and exit")
		lintOnly = flag.Bool("lint", false, "lint the input and exit")
		synthRpt = flag.Bool("synth", false, "synthesize the input, print the cell report and exit")
		verbose  = flag.Bool("v", false, "print the pipeline log")
	)
	flag.Parse()
	if err := validateFlags(*variant, *formDep, *mode, *backend); err != nil {
		fatalf("%v", err)
	}

	if *list {
		for _, m := range dataset.All() {
			fmt.Printf("%-18s %-14s complexity=%d clock=%q fsm=%v\n",
				m.Name, m.Category, m.Complexity, m.Clock, m.IsFSM)
		}
		return
	}

	m := dataset.ByName(*modName)
	if m == nil {
		fatalf("unknown module %q (use -list)", *modName)
	}

	source := m.Source
	golden := m.Source
	class := "FuncLogic"
	faultID := m.Name + "/cli"
	descr := "(user input)"

	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatalf("read %s: %v", *file, err)
		}
		source = string(data)
	case *inject != "":
		fs := faultgen.Generate(m, faultgen.Class(*inject))
		if len(fs) == 0 {
			fatalf("class %s is not expressible on %s", *inject, m.Name)
		}
		if *variant >= len(fs) {
			fatalf("module %s has %d %s variants", m.Name, len(fs), *inject)
		}
		f := fs[*variant]
		source, golden, class, faultID, descr = f.Source, f.Golden, string(f.Class), f.ID, f.Descr
	}

	if *synthRpt {
		nl, err := synth.SynthesizeSource(source, m.Top)
		if err != nil {
			fatalf("synthesis failed: %v", err)
		}
		fmt.Print(nl.FormatStats())
		saved := nl.Optimize()
		fmt.Printf("after optimization (-%d cells):\n", saved)
		fmt.Print(nl.FormatStats())
		return
	}

	if *lintOnly {
		rep := lint.Lint(source)
		fmt.Print(rep.Format())
		if !rep.Clean() {
			os.Exit(1)
		}
		fmt.Println("lint: clean")
		return
	}

	genMode := llm.ModePair
	if *mode == "complete" {
		genMode = llm.ModeComplete
	}
	simBackend, _ := sim.ParseBackend(*backend) // validated up front
	var coverOpts sim.CoverOptions
	if *cov {
		coverOpts = sim.CoverAll()
	}
	client := llm.NewOracle(llm.Knowledge{
		FaultID: faultID, Golden: golden, Class: class,
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, llm.DefaultProfile(), *seed)

	fmt.Printf("UVLLM: verifying %s (%s)\n", m.Name, descr)
	res := core.Verify(core.Input{
		Source: source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: client,
		Opts: core.Options{
			Seed: *seed, Mode: genMode, Backend: simBackend,
			Cache: sim.SharedCache(), Memo: uvm.SharedTraceMemo(),
			Cover: coverOpts,
		},
	})

	fmt.Printf("result: success=%v stage=%s iterations=%d pass_rate=%.2f%% coverage=%.1f%%\n",
		res.Success, res.FixedStage, res.Iterations, res.PassRate*100, res.Coverage)
	if *cov {
		fmt.Printf("structural coverage: %.1f%% (best across UVM runs)\n", res.StructCoverage)
	}
	fmt.Printf("modeled time: pre=%.2fs ms=%.2fs sl=%.2fs total=%.2fs; LLM calls=%d (%d in / %d out tokens)\n",
		res.Times.Pre, res.Times.MS, res.Times.SL, res.Times.Total(),
		res.Usage.Calls, res.Usage.InputTokens, res.Usage.OutputTokens)

	formalFailed := false
	if *useForm && res.Success {
		formalFailed = !runFormal(res.Final, golden, m, *formDep)
	}
	if *verbose {
		cs := sim.SharedCache().Stats()
		ms := uvm.SharedTraceMemo().Stats()
		fmt.Printf("amortization: compile cache %d hits / %d misses; golden-trace memo %d hits / %d misses\n",
			cs.Hits, cs.Misses, ms.Hits, ms.Misses)
		fmt.Println("--- pipeline log ---")
		fmt.Println(strings.Join(res.Log, "\n"))
		fmt.Println("--- final source ---")
		fmt.Println(res.Final)
	}
	if !res.Success || formalFailed {
		os.Exit(1)
	}
}

// runFormal bounded-proves the delivered source equivalent to the golden
// (the third oracle: where the UVM run samples stimulus, the proof
// exhausts it to the unrolling depth). It reports true when the source
// is proved equivalent or the design is outside the blastable subset
// (in which case the simulation verdict stands alone).
func runFormal(final, golden string, m *dataset.Module, depth int) bool {
	if depth <= 0 {
		depth = formal.DefaultBMCDepth
	}
	g, err := sim.SharedCache().Compile(golden, m.Top, sim.BackendCompiled)
	if err != nil {
		fmt.Printf("formal: golden does not compile: %v\n", err)
		return true
	}
	c, err := sim.SharedCache().Compile(final, m.Top, sim.BackendCompiled)
	if err != nil {
		fmt.Printf("formal: delivered source does not compile: %v\n", err)
		return false
	}
	res, err := formal.BMCEquiv(g, c, m.Clock, depth)
	if err != nil {
		fmt.Printf("formal: not checked (%v)\n", err)
		return true
	}
	if res.Equivalent {
		fmt.Printf("formal: PROVED equivalent to golden for every stimulus up to %d cycles (%d AIG nodes, %d conflicts)\n",
			depth, res.Stats.AIGNodes, res.Stats.Conflicts())
		return true
	}
	div, cyc, rerr := formal.ReplayCex(golden, final, m.Top, m.Clock, res.Cex, sim.BackendCompiled)
	fmt.Printf("formal: REFUTED — diverges from golden at post-reset cycle %d on %s (simulation replay: diverged=%v at cycle %d, err=%v)\n",
		res.Cex.Cycle, res.Cex.Signal, div, cyc, rerr)
	fmt.Printf("formal: counterexample stimulus: %v\n", res.Cex.Inputs)
	return false
}

// validateFlags rejects nonsense flag values before any pipeline work
// runs: a negative variant index would panic inside the fault lookup, a
// negative formal depth would silently become the default, an unknown
// repair mode would silently become "pair", and an unknown backend used
// to surface only after lint/synth work had already run.
func validateFlags(variant, formalDepth int, mode, backend string) error {
	if variant < 0 {
		return fmt.Errorf("-variant must be >= 0, got %d", variant)
	}
	if formalDepth < 0 {
		return fmt.Errorf("-formal-depth must be >= 0, got %d", formalDepth)
	}
	if mode != "pair" && mode != "complete" {
		return fmt.Errorf("-mode must be %q or %q, got %q", "pair", "complete", mode)
	}
	if _, err := sim.ParseBackend(backend); err != nil {
		return err
	}
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "uvllm: "+format+"\n", args...)
	os.Exit(2)
}
