package exp

// Bit-parallel amortization study: the same per-lane-cycle cost question
// as the batch study, asked of the P64 bit-parallel engine. The study
// drives the hot-loop module mix three ways for a fixed cycle count —
// K standalone harness instances, one K-lane sim.Batch, and one 64-lane
// psim.Engine (recording off, the throughput-consumer configuration) —
// and reports ns per lane-cycle for each. It feeds the EXPERIMENTS.md
// bit-parallel table; BenchmarkBitSimLanes and benchguard's per-lane
// pair rule guard the same ratio in CI.

import (
	"fmt"
	"strings"
	"time"

	"uvllm/internal/dataset"
	"uvllm/internal/psim"
	"uvllm/internal/sim"
)

// BitAmortRow is one module's three-way per-lane-cycle timing comparison.
type BitAmortRow struct {
	Module       string
	Cycles       int     // per lane
	SeqNsPerLC   float64 // sequential ns per lane-cycle (8 standalone instances)
	BatchNsPerLC float64 // batched ns per lane-cycle (one 8-lane sim.Batch)
	BitNsPerLC   float64 // bit-parallel ns per lane-cycle (one 64-lane psim.Engine)
	VsBatch      float64 // BatchNsPerLC / BitNsPerLC
	VsSeq        float64 // SeqNsPerLC / BitNsPerLC
}

// bitAmortLanes is the psim lane count: one full machine word, the
// engine's natural width.
const bitAmortLanes = 64

// BitSimAmortizationStudy measures per-lane-cycle cost of the bit-parallel
// engine against sim.Batch (8 lanes) and standalone instances over the
// hot-loop module mix. cycles <= 0 defaults to 2000. Every module of the
// mix must be inside the bit-parallel subset; an unsupported module is an
// error, not a silent fallback, so the study never mislabels batch
// numbers as bit-parallel ones.
func (s *Session) BitSimAmortizationStudy(cycles int) ([]BitAmortRow, error) {
	if cycles <= 0 {
		cycles = 2000
	}
	const batchLanes = 8
	var rows []BitAmortRow
	for _, name := range batchAmortModules {
		m := dataset.ByName(name)
		p, err := s.Cache.Compile(m.Source, m.Top, s.Backend)
		if err != nil {
			return rows, fmt.Errorf("exp: bitlanes study: %s: %w", name, err)
		}
		if err := psim.Supported(p, m.Clock); err != nil {
			return rows, fmt.Errorf("exp: bitlanes study: %s outside the bit-parallel subset: %w", name, err)
		}
		seq, err := timeSequentialLanes(p, m, batchLanes, cycles)
		if err != nil {
			return rows, fmt.Errorf("exp: bitlanes study: %s (sequential): %w", name, err)
		}
		bat, err := timeBatchLanes(p, m, batchLanes, cycles)
		if err != nil {
			return rows, fmt.Errorf("exp: bitlanes study: %s (batch): %w", name, err)
		}
		bit, err := timeBitLanes(p, m, bitAmortLanes, cycles)
		if err != nil {
			return rows, fmt.Errorf("exp: bitlanes study: %s (bit-parallel): %w", name, err)
		}
		row := BitAmortRow{
			Module: name, Cycles: cycles,
			SeqNsPerLC:   float64(seq.Nanoseconds()) / (batchLanes * float64(cycles)),
			BatchNsPerLC: float64(bat.Nanoseconds()) / (batchLanes * float64(cycles)),
			BitNsPerLC:   float64(bit.Nanoseconds()) / (bitAmortLanes * float64(cycles)),
		}
		if row.BitNsPerLC > 0 {
			row.VsBatch = row.BatchNsPerLC / row.BitNsPerLC
			row.VsSeq = row.SeqNsPerLC / row.BitNsPerLC
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// timeBitLanes runs the same stimulus stream as the batch driver through
// one `lanes`-lane bit-parallel engine with recording off — engine
// construction (bit-blasting the cycle circuit) included, matching the
// root benchmark — and returns the wall time.
func timeBitLanes(p *sim.Program, m *dataset.Module, lanes, cycles int) (time.Duration, error) {
	start := time.Now()
	eng, err := psim.NewEngine(p, lanes, m.Clock)
	if err != nil {
		return 0, err
	}
	eng.SetRecord(false)
	if err := eng.ApplyReset(2); err != nil {
		return 0, err
	}
	ports := eng.Ports()
	rstIdx := -1
	for i, pt := range ports {
		if m.HasReset && pt.Name == "rst_n" {
			rstIdx = i
		}
	}
	rows := make([][]uint64, lanes)
	for k := range rows {
		rows[k] = make([]uint64, len(ports))
	}
	for c := 0; c < cycles; c++ {
		for k := range rows {
			for i, pt := range ports {
				rows[k][i] = amortStim(k, c, pt)
			}
			if rstIdx >= 0 {
				rows[k][rstIdx] = 1
			}
		}
		if err := eng.Cycle(rows); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// FormatBitSimAmortization renders the study as the EXPERIMENTS.md table.
func FormatBitSimAmortization(rows []BitAmortRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "Bit-parallel amortization, %d lanes x %d cycles (vs 8-lane batch and sequential)\n",
		bitAmortLanes, rows[0].Cycles)
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %9s %9s\n",
		"module", "seq ns/lc", "batch ns/lc", "bit ns/lc", "vs batch", "vs seq")
	var sumB, sumS float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12.1f %12.1f %12.1f %8.2fx %8.2fx\n",
			r.Module, r.SeqNsPerLC, r.BatchNsPerLC, r.BitNsPerLC, r.VsBatch, r.VsSeq)
		sumB += r.VsBatch
		sumS += r.VsSeq
	}
	n := float64(len(rows))
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %8.2fx %8.2fx\n", "mean", "", "", "", sumB/n, sumS/n)
	return b.String()
}
