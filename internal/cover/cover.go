// Package cover is the structural-coverage data model shared by both
// simulator backends, the coverage-directed stimulus layer and the
// evaluation harness. A Map is a registry of structural points —
// statements, branch arms, per-bit signal toggles, inferred FSM states
// and transitions — with a hit count per point. The point universe is
// fixed at registration time (internal/sim enumerates it from the
// elaborated design), so Percent has a meaningful denominator, Diff can
// report genuinely new coverage, and Encode renders a deterministic byte
// string that the cross-backend differential gates compare verbatim.
package cover

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a structural coverage point.
type Kind uint8

// Point kinds. The order is part of the deterministic encoding.
const (
	// KindStmt is one executable statement of a process body.
	KindStmt Kind = iota
	// KindBranch is one arm of an if or case statement (including the
	// implicit empty else and the case default).
	KindBranch
	// KindToggle0 is one signal bit observed at 0.
	KindToggle0
	// KindToggle1 is one signal bit observed at 1.
	KindToggle1
	// KindState is one occupied state of an inferred FSM register.
	KindState
	// KindTrans is one taken state transition of an inferred FSM register.
	KindTrans
)

var kindNames = [...]string{"stmt", "branch", "tog0", "tog1", "state", "trans"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Point identifies one structural coverage point within a design. Name is
// hierarchical and stable across elaborations of the same source (e.g.
// "p3.s1.if" for a statement, "u1.state=2" for an FSM state).
type Point struct {
	Kind Kind
	Name string
}

// String renders the point as kind:name.
func (p Point) String() string { return p.Kind.String() + ":" + p.Name }

// Map is a structural coverage map: a fixed point universe with a hit
// count per point. The zero value is not usable; construct with New. A
// Map is not safe for concurrent mutation.
type Map struct {
	counts map[Point]uint64
}

// New returns an empty map with an empty point universe.
func New() *Map {
	return &Map{counts: map[Point]uint64{}}
}

// Register adds a point to the universe with zero hits. Registering an
// existing point is a no-op (its count is preserved).
func (m *Map) Register(p Point) {
	if _, ok := m.counts[p]; !ok {
		m.counts[p] = 0
	}
}

// Add registers the point if needed and increments its hit count by n.
func (m *Map) Add(p Point, n uint64) {
	m.counts[p] += n
}

// Count returns the hit count of a point (0 if unregistered).
func (m *Map) Count(p Point) uint64 { return m.counts[p] }

// Len returns the number of registered points.
func (m *Map) Len() int { return len(m.counts) }

// Hit returns the number of points with a non-zero count.
func (m *Map) Hit() int {
	n := 0
	for _, c := range m.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// Percent returns hit points over registered points in [0,100]; an empty
// universe scores 0.
func (m *Map) Percent() float64 {
	if len(m.counts) == 0 {
		return 0
	}
	return 100 * float64(m.Hit()) / float64(len(m.counts))
}

// KindPercent returns the percent restricted to one kind, and whether the
// universe has any points of that kind.
func (m *Map) KindPercent(k Kind) (float64, bool) {
	total, hit := 0, 0
	for p, c := range m.counts {
		if p.Kind != k {
			continue
		}
		total++
		if c > 0 {
			hit++
		}
	}
	if total == 0 {
		return 0, false
	}
	return 100 * float64(hit) / float64(total), true
}

// Merge folds other into m: the universes union, counts add. It returns m.
func (m *Map) Merge(other *Map) *Map {
	if other == nil {
		return m
	}
	for p, c := range other.counts {
		m.counts[p] += c
	}
	return m
}

// Gain returns how many points hit in other are not yet hit in m — the
// new-coverage signal the directed stimulus scheduler ranks candidates
// by. Points absent from m's universe count as new.
func (m *Map) Gain(other *Map) int {
	if other == nil {
		return 0
	}
	n := 0
	for p, c := range other.counts {
		if c > 0 && m.counts[p] == 0 {
			n++
		}
	}
	return n
}

// Diff returns the points hit in other but not in m, sorted.
func (m *Map) Diff(other *Map) []Point {
	var out []Point
	if other == nil {
		return out
	}
	for p, c := range other.counts {
		if c > 0 && m.counts[p] == 0 {
			out = append(out, p)
		}
	}
	sortPoints(out)
	return out
}

// Clone returns a deep copy of m.
func (m *Map) Clone() *Map {
	out := New()
	for p, c := range m.counts {
		out.counts[p] = c
	}
	return out
}

// Points returns the full universe, sorted.
func (m *Map) Points() []Point {
	out := make([]Point, 0, len(m.counts))
	for p := range m.counts {
		out = append(out, p)
	}
	sortPoints(out)
	return out
}

func sortPoints(ps []Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Kind != ps[j].Kind {
			return ps[i].Kind < ps[j].Kind
		}
		return ps[i].Name < ps[j].Name
	})
}

// Encode renders the map as a deterministic byte string — one
// "kind:name=count" line per point in sorted order — suitable for
// byte-identity assertions across simulator backends.
func (m *Map) Encode() []byte {
	var b strings.Builder
	for _, p := range m.Points() {
		fmt.Fprintf(&b, "%s=%d\n", p, m.counts[p])
	}
	return []byte(b.String())
}

// Report renders a human-readable summary: overall percent, a per-kind
// breakdown and the sorted list of missed points (capped at maxMiss; 0
// means no miss list).
func (m *Map) Report(maxMiss int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "structural coverage: %.1f%% (%d/%d points)\n", m.Percent(), m.Hit(), m.Len())
	var total, hit [KindTrans + 1]int
	for p, c := range m.counts {
		total[p.Kind]++
		if c > 0 {
			hit[p.Kind]++
		}
	}
	for k := KindStmt; k <= KindTrans; k++ {
		if total[k] > 0 {
			fmt.Fprintf(&b, "  %-6s %6.1f%% (%d/%d)\n", k, 100*float64(hit[k])/float64(total[k]), hit[k], total[k])
		}
	}
	if maxMiss > 0 {
		missed := 0
		for _, p := range m.Points() {
			if m.counts[p] > 0 {
				continue
			}
			if missed < maxMiss {
				fmt.Fprintf(&b, "  MISS %s\n", p)
			}
			missed++
		}
		if missed > maxMiss {
			fmt.Fprintf(&b, "  ... %d more missed points\n", missed-maxMiss)
		}
	}
	return b.String()
}
