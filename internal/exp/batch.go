package exp

// Batch amortization study: how much of a standalone instance's
// per-cycle cost the fused batch scheduler actually shares. The study
// drives K lanes of each hot-loop benchmark module for a fixed cycle
// count twice — as K standalone harness runs and as one sim.Batch — and
// reports per-lane-cycle wall time for both. It feeds the EXPERIMENTS.md
// amortization table; BenchmarkBatchVsSequential guards the same ratio
// in CI.

import (
	"fmt"
	"strings"
	"time"

	"uvllm/internal/dataset"
	"uvllm/internal/sim"
)

// BatchAmortRow is one module's batch-vs-sequential timing comparison.
type BatchAmortRow struct {
	Module        string
	Lanes         int
	Cycles        int     // per lane
	SeqNsPerLC    float64 // sequential ns per lane-cycle (K standalone instances)
	BatchNsPerLC  float64 // batched ns per lane-cycle (one K-lane sim.Batch)
	PerLaneFactor float64 // SeqNsPerLC / BatchNsPerLC
}

// batchAmortModules is the hot-loop module mix the root benchmarks
// drive: two levelized designs, one FSM, one wide adder.
var batchAmortModules = []string{"fifo_sync", "alu", "traffic_light", "adder_32bit"}

// BatchAmortizationStudy measures the per-lane-cycle amortization factor
// of sim.Batch over the hot-loop benchmark modules. lanes <= 1 defaults
// to 8, cycles <= 0 to 2000. Stimulus is the benchmark driver's
// deterministic stream, varied per lane.
func (s *Session) BatchAmortizationStudy(lanes, cycles int) ([]BatchAmortRow, error) {
	if lanes <= 1 {
		lanes = 8
	}
	if cycles <= 0 {
		cycles = 2000
	}
	var rows []BatchAmortRow
	for _, name := range batchAmortModules {
		m := dataset.ByName(name)
		p, err := s.Cache.Compile(m.Source, m.Top, s.Backend)
		if err != nil {
			return rows, fmt.Errorf("exp: batch study: %s: %w", name, err)
		}
		seq, err := timeSequentialLanes(p, m, lanes, cycles)
		if err != nil {
			return rows, fmt.Errorf("exp: batch study: %s (sequential): %w", name, err)
		}
		bat, err := timeBatchLanes(p, m, lanes, cycles)
		if err != nil {
			return rows, fmt.Errorf("exp: batch study: %s (batch): %w", name, err)
		}
		lc := float64(lanes) * float64(cycles)
		row := BatchAmortRow{
			Module: name, Lanes: lanes, Cycles: cycles,
			SeqNsPerLC:   float64(seq.Nanoseconds()) / lc,
			BatchNsPerLC: float64(bat.Nanoseconds()) / lc,
		}
		if row.BatchNsPerLC > 0 {
			row.PerLaneFactor = row.SeqNsPerLC / row.BatchNsPerLC
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// amortStim is the benchmark driver's stimulus value for one (lane,
// cycle, port) triple — deterministic, cheap, per-lane distinct.
func amortStim(lane, cycle int, pt sim.PortInfo) uint64 {
	return uint64(cycle*31+lane*7+len(pt.Name)) & amortMask(pt.Width)
}

func amortMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// timeSequentialLanes runs `lanes` standalone harness instances of p for
// `cycles` cycles each — today's consumer pattern — and returns the wall
// time.
func timeSequentialLanes(p *sim.Program, m *dataset.Module, lanes, cycles int) (time.Duration, error) {
	inputs := p.Design().Inputs()
	start := time.Now()
	for k := 0; k < lanes; k++ {
		inst, err := p.NewInstance()
		if err != nil {
			return 0, err
		}
		h := sim.NewHarness(inst, m.Clock)
		if err := h.ApplyReset(2); err != nil {
			return 0, err
		}
		in := map[string]uint64{}
		for c := 0; c < cycles; c++ {
			for _, pt := range inputs {
				if pt.Name == m.Clock {
					continue
				}
				in[pt.Name] = amortStim(k, c, pt)
			}
			if m.HasReset {
				in["rst_n"] = 1
			}
			if _, err := h.Cycle(in); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start), nil
}

// timeBatchLanes runs the same total work as one `lanes`-lane sim.Batch
// driven through the flat row API and returns the wall time.
func timeBatchLanes(p *sim.Program, m *dataset.Module, lanes, cycles int) (time.Duration, error) {
	start := time.Now()
	b, err := sim.NewBatch(p, lanes, m.Clock)
	if err != nil {
		return 0, err
	}
	if err := b.ApplyReset(2); err != nil {
		return 0, err
	}
	ports := b.Ports()
	rstIdx := -1
	for i, pt := range ports {
		if m.HasReset && pt.Name == "rst_n" {
			rstIdx = i
		}
	}
	rows := make([][]uint64, lanes)
	for k := range rows {
		rows[k] = make([]uint64, len(ports))
	}
	for c := 0; c < cycles; c++ {
		for k := range rows {
			for i, pt := range ports {
				rows[k][i] = amortStim(k, c, pt)
			}
			if rstIdx >= 0 {
				rows[k][rstIdx] = 1
			}
		}
		if err := b.Cycle(rows); err != nil {
			return 0, err
		}
		for k := range rows {
			if err := b.Err(k); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start), nil
}

// FormatBatchAmortization renders the study as the EXPERIMENTS.md table.
func FormatBatchAmortization(rows []BatchAmortRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "Batch amortization, %d lanes x %d cycles (compiled backend)\n",
		rows[0].Lanes, rows[0].Cycles)
	fmt.Fprintf(&b, "%-18s %14s %14s %9s\n", "module", "seq ns/lc", "batch ns/lc", "factor")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %14.1f %14.1f %8.2fx\n",
			r.Module, r.SeqNsPerLC, r.BatchNsPerLC, r.PerLaneFactor)
		sum += r.PerLaneFactor
	}
	fmt.Fprintf(&b, "%-18s %14s %14s %8.2fx\n", "mean", "", "", sum/float64(len(rows)))
	return b.String()
}
