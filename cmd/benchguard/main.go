// Command benchguard is the CI bench-regression gate for the hot paths:
// the compiled simulation loop, the end-to-end verification pipeline and
// the formal engine (bit-blasting, SAT solving, bounded equivalence). It
// parses `go test -bench` output, reduces each benchmark to its best
// (minimum ns/op) run across -count repetitions, and compares against
// the committed BENCH_baseline.json:
//
//	go test -run XXX -bench 'Benchmark(Sim(EventDriven|Compiled|CompiledObs)|PipelineVerify|BitBlast|SATSolve|BMCEquiv(Incremental)?|Batch(Lanes|VsSequential)|BitSim(Lanes|Transpose))$' -count=5 . | tee bench.txt
//	go run ./cmd/benchguard -bench bench.txt -baseline BENCH_baseline.json
//
// Raw ns/op is machine-dependent, so every guarded quantity is a ratio
// against BenchmarkSimEventDriven measured in the same run — the
// reference interpreter cancels the host's absolute speed. Every entry
// of the baseline file other than the event reference itself is guarded:
// its within-run ratio must stay within -tolerance of the baseline's
// ratio, and BenchmarkSimCompiled must additionally stay strictly below
// 1.0 (the compiled backend must remain faster than the interpreter).
// Benchmarks the baseline file predates are not guarded, so new hot
// paths roll out by adding a baseline line.
//
// Pair rules hold architectural claims independent of the baseline:
// batch lane amortization, the bit-parallel per-lane floor, the
// incremental formal engine — BenchmarkBMCEquivIncremental must stay
// strictly faster than the from-scratch BenchmarkBMCEquiv on the same
// depth-8 proof — and the observability layer's zero-overhead claim:
// BenchmarkSimCompiledObs (hot loop with a live registry counter) must
// stay within 15% of BenchmarkSimCompiled in the same run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference measurement.
type Baseline struct {
	Note       string             `json:"note"`
	Machine    string             `json:"machine"`
	Tolerance  float64            `json:"tolerance"`  // allowed relative ratio regression, e.g. 0.20
	Benchmarks map[string]float64 `json:"benchmarks"` // name -> ns/op on the reference machine
}

const (
	benchEvent       = "BenchmarkSimEventDriven"
	benchCompiled    = "BenchmarkSimCompiled"
	benchCompiledObs = "BenchmarkSimCompiledObs"
	benchBatch       = "BenchmarkBatchLanes"
	benchBatchSeq    = "BenchmarkBatchVsSequential"
	benchBitSim      = "BenchmarkBitSimLanes"
	benchBMCScratch  = "BenchmarkBMCEquiv"
	benchBMCInc      = "BenchmarkBMCEquivIncremental"
)

// batchMinSpeedup is the acceptance bar for the batch scheduler: the
// same K-lane hot-loop work must be at least this factor cheaper inside
// one sim.Batch than as K standalone instances. The two benchmarks do
// identical total work, so their within-run ns/op ratio is the per-lane
// amortization factor directly.
const batchMinSpeedup = 1.5

// Lane counts of the per-lane normalized pair: BenchmarkBatchLanes runs
// 8 lanes per iteration, BenchmarkBitSimLanes 64. Keep in sync with
// batchBenchLanes / bitSimLanes in bench_test.go.
const (
	batchBenchLanes = 8
	bitSimLanes     = 64
)

// bitSimMinSpeedup is the acceptance bar for the bit-parallel engine:
// its per-lane cycle cost (ns/op divided by its 64 lanes) must be at
// least this factor below sim.Batch's per-lane cost (ns/op divided by
// its 8 lanes) on the same module mix and cycle count.
const bitSimMinSpeedup = 4.0

// obsMaxOverhead is the acceptance bar for the observability layer's
// zero-overhead claim: the compiled simulation hot loop with a live
// registry counter attached (BenchmarkSimCompiledObs) may cost at most
// this factor of the uninstrumented loop (BenchmarkSimCompiled) in the
// same run. The instrumented path is one atomic add per cycle, so the
// bar is mostly noise allowance.
const obsMaxOverhead = 1.15

// bmcIncMinSpeedup is the acceptance bar for the incremental formal
// engine: the same depth-8 UNSAT proof must be strictly cheaper on the
// retained-solver path than rebuilt from scratch at every depth. The
// observed margin is orders of magnitude; the gate only pins the
// direction so the pair rule survives machine variance.
const bmcIncMinSpeedup = 1.0

func main() {
	var (
		benchPath    = flag.String("bench", "", "go test -bench output file (default stdin)")
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
		tolerance    = flag.Float64("tolerance", 0, "override the baseline tolerance (0 = use file)")
	)
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	tol := base.Tolerance
	if *tolerance > 0 {
		tol = *tolerance
	}
	if tol <= 0 {
		tol = 0.20
	}

	in := os.Stdin
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	best, err := parseBench(in)
	if err != nil {
		fatal(err)
	}

	ev, okE := best[benchEvent]
	if !okE {
		fatal(fmt.Errorf("bench output missing %s (got %v)", benchEvent, names(best)))
	}
	baseEv, okE := base.Benchmarks[benchEvent]
	if !okE || baseEv <= 0 {
		fatal(fmt.Errorf("baseline missing %s", benchEvent))
	}

	// Every other baseline entry is guarded the same way: its within-run
	// ratio against the event-driven reference must stay within tolerance
	// of the baseline's ratio. Entries the baseline predates are simply
	// not guarded, so new benchmarks roll out by adding a baseline line.
	var guarded []string
	for name, ns := range base.Benchmarks {
		if name != benchEvent && ns > 0 {
			guarded = append(guarded, name)
		}
	}
	sort.Strings(guarded)
	failed := false
	for _, name := range guarded {
		got, ok := best[name]
		if !ok {
			fatal(fmt.Errorf("baseline guards %s but the bench output does not contain it", name))
		}
		ratio := got / ev
		baseRatio := base.Benchmarks[name] / baseEv
		fmt.Printf("benchguard: %s %.0f ns/op, ratio %.3f vs event (baseline %.3f, tolerance %.0f%%)\n",
			name, got, ratio, baseRatio, tol*100)
		if name == benchCompiled && ratio >= 1.0 {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL: compiled backend is no longer faster than event-driven (ratio %.3f)\n", ratio)
			failed = true
		}
		if ratio > baseRatio*(1+tol) {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL: %s regressed: ratio %.3f vs baseline %.3f (>%.0f%% slower relative to the event backend)\n",
				name, ratio, baseRatio, tol*100)
			failed = true
		}
	}
	// Pair rule: whenever both batch benchmarks are in the run, the
	// per-lane speedup of the fused batch over K standalone instances
	// must hold the acceptance bar, regardless of the baseline's ratios.
	if bl, ok := best[benchBatch]; ok {
		if sq, ok := best[benchBatchSeq]; ok {
			speedup := sq / bl
			fmt.Printf("benchguard: batch per-lane speedup %.2fx (%s %.0f ns/op vs %s %.0f ns/op, floor %.1fx)\n",
				speedup, benchBatch, bl, benchBatchSeq, sq, batchMinSpeedup)
			if speedup < batchMinSpeedup {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL: batch per-lane speedup %.2fx fell below the %.1fx floor\n",
					speedup, batchMinSpeedup)
				failed = true
			}
		}
	}
	// Pair rule: whenever both lane benchmarks are in the run, the
	// bit-parallel engine's per-lane cost must beat the batch scheduler's
	// per-lane cost by the acceptance bar. The benchmarks run different
	// lane counts, so each side is normalized to ns per lane first.
	if bl, ok := best[benchBatch]; ok {
		if bp, ok := best[benchBitSim]; ok {
			perBatch := bl / batchBenchLanes
			perBit := bp / bitSimLanes
			speedup := perBatch / perBit
			fmt.Printf("benchguard: bit-parallel per-lane speedup %.2fx (%s %.0f ns/lane vs %s %.0f ns/lane, floor %.1fx)\n",
				speedup, benchBitSim, perBit, benchBatch, perBatch, bitSimMinSpeedup)
			if speedup < bitSimMinSpeedup {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL: bit-parallel per-lane speedup %.2fx fell below the %.1fx floor\n",
					speedup, bitSimMinSpeedup)
				failed = true
			}
		}
	}
	// Pair rule: whenever both sides of the observability pair are in
	// the run, the instrumented hot loop must stay within the
	// zero-overhead bar of the uninstrumented one — the enforced form of
	// internal/obs's "one atomic when enabled" claim.
	if plain, ok := best[benchCompiled]; ok {
		if instr, ok := best[benchCompiledObs]; ok {
			overhead := instr / plain
			fmt.Printf("benchguard: obs instrumentation overhead %.3fx (%s %.0f ns/op vs %s %.0f ns/op, ceiling %.2fx)\n",
				overhead, benchCompiledObs, instr, benchCompiled, plain, obsMaxOverhead)
			if overhead > obsMaxOverhead {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL: instrumented sim loop costs %.3fx the plain loop (> %.2fx) — the obs hot path regressed\n",
					overhead, obsMaxOverhead)
				failed = true
			}
		}
	}
	// Pair rule: whenever both formal benchmarks are in the run, the
	// incremental engine must be strictly faster than the from-scratch
	// loop on the identical proof obligation.
	if sc, ok := best[benchBMCScratch]; ok {
		if inc, ok := best[benchBMCInc]; ok {
			speedup := sc / inc
			fmt.Printf("benchguard: incremental BMC speedup %.2fx (%s %.0f ns/op vs %s %.0f ns/op, floor >%.1fx)\n",
				speedup, benchBMCInc, inc, benchBMCScratch, sc, bmcIncMinSpeedup)
			if speedup <= bmcIncMinSpeedup {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL: incremental BMC speedup %.2fx is not strictly above %.1fx — the retained solver no longer pays\n",
					speedup, bmcIncMinSpeedup)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}

func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// parseBench extracts min ns/op per benchmark from `go test -bench` output
// lines of the form "BenchmarkName-8   100   123456 ns/op ...". The -N
// GOMAXPROCS suffix is stripped.
func parseBench(f *os.File) (map[string]float64, error) {
	best := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, tok := range fields {
			if tok == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		if cur, ok := best[name]; !ok || ns < cur {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return best, nil
}

func names(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
