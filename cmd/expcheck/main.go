// Command expcheck diffs the headline table produced by cmd/experiments
// against the recorded numbers in EXPERIMENTS.md, the CI gate that keeps
// the documented paper-vs-measured table honest:
//
//	go run ./cmd/experiments -table2 | tee /tmp/exp.txt
//	go run ./cmd/expcheck -report /tmp/exp.txt -md EXPERIMENTS.md
//
// The evaluation is fully deterministic (seeded oracle), so every metric
// present in both sources must match to the printed precision. Exit 1 on
// any mismatch or when the sources share no metrics (format drift).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	var (
		report = flag.String("report", "", "cmd/experiments output file (default stdin)")
		md     = flag.String("md", "EXPERIMENTS.md", "markdown file with the recorded headline table")
	)
	flag.Parse()

	var repLines []string
	var err error
	if *report == "" {
		repLines, err = readLines(os.Stdin)
	} else {
		repLines, err = readFileLines(*report)
	}
	if err != nil {
		fatal(err)
	}
	mdLines, err := readFileLines(*md)
	if err != nil {
		fatal(err)
	}

	got := parseReport(repLines)
	want := parseMarkdown(mdLines)
	if len(got) == 0 {
		fatal(fmt.Errorf("no headline metrics found in the experiments output"))
	}
	if len(want) == 0 {
		fatal(fmt.Errorf("no headline table found in %s", *md))
	}

	compared, failed := 0, 0
	for name, wantV := range want {
		gotV, ok := got[name]
		if !ok {
			continue // the markdown may record metrics the block omits and vice versa
		}
		compared++
		if math.Abs(gotV-wantV) > 0.005 {
			fmt.Fprintf(os.Stderr, "expcheck: MISMATCH %-24s recorded %8.2f  measured %8.2f\n", name, wantV, gotV)
			failed++
		} else {
			fmt.Printf("expcheck: ok %-24s %8.2f\n", name, gotV)
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("headline formats share no metrics (parser drift?)"))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "expcheck: %d/%d headline metrics diverged from %s — rerun cmd/experiments and update the table\n",
			failed, compared, *md)
		os.Exit(1)
	}
	fmt.Printf("expcheck: all %d shared headline metrics match\n", compared)
}

// reportLineRe matches FormatHeadline rows:
//
//	"  Syntax FR                    paper    86.99%   measured    87.79%"
var reportLineRe = regexp.MustCompile(`^\s{2}(\S.*?)\s+paper\s+\S+\s+measured\s+([0-9.+-]+)`)

func parseReport(lines []string) map[string]float64 {
	out := map[string]float64{}
	for _, ln := range lines {
		m := reportLineRe.FindStringSubmatch(strings.TrimRight(ln, "%x \t"))
		if m == nil {
			continue
		}
		if v, err := strconv.ParseFloat(strings.Trim(m[2], "%x"), 64); err == nil {
			out[normalize(m[1])] = v
		}
	}
	return out
}

// parseMarkdown matches the EXPERIMENTS.md headline rows:
//
//	"| Syntax FR | 86.99% | 87.79% |"
func parseMarkdown(lines []string) map[string]float64 {
	out := map[string]float64{}
	for _, ln := range lines {
		cells := strings.Split(strings.Trim(strings.TrimSpace(ln), "|"), "|")
		if len(cells) != 3 {
			continue
		}
		name := normalize(cells[0])
		meas := strings.TrimSpace(cells[2])
		meas = strings.Trim(meas, "%×x~")
		if v, err := strconv.ParseFloat(meas, 64); err == nil && name != "metric" {
			out[name] = v
		}
	}
	return out
}

// normalize canonicalizes a metric name across the two formats (Unicode
// minus vs ASCII hyphen, case, inner whitespace).
func normalize(name string) string {
	name = strings.ReplaceAll(name, "−", "-")
	name = strings.ToLower(strings.TrimSpace(name))
	return strings.Join(strings.Fields(name), " ")
}

func readFileLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readLines(f)
}

func readLines(f *os.File) ([]string, error) {
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "expcheck:", err)
	os.Exit(1)
}
