package uvm

import (
	"strings"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/sim"
)

func newEnvFor(t *testing.T, name, source string) *Env {
	t.Helper()
	m := dataset.ByName(name)
	if m == nil {
		t.Fatalf("no dataset module %q", name)
	}
	if source == "" {
		source = m.Source
	}
	env, err := NewEnv(Config{
		Source: source, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 11,
	})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func randomSeqFor(env *Env, n int) *RandomSequence {
	var ports []sim.PortInfo
	for _, p := range env.DUT.Sim.Design().Inputs() {
		if p.Name == env.DUT.Clock {
			continue
		}
		ports = append(ports, p)
	}
	name, _ := sim.FindReset(env.DUT.Sim.Design())
	return &RandomSequence{Ports: ports, N: n, ResetName: name, ResetEvery: 50}
}

func TestGoldenDUTPassesFully(t *testing.T) {
	env := newEnvFor(t, "counter_12bit", "")
	rate := env.Run(randomSeqFor(env, 200))
	if rate != 1.0 {
		t.Fatalf("golden counter pass rate = %.2f, want 1.0\nlog:\n%s", rate, env.Log())
	}
	if env.Score.Total != 200 {
		t.Errorf("total = %d, want 200", env.Score.Total)
	}
	if !strings.Contains(env.Log(), "pass_rate=100.00%") {
		t.Errorf("log missing pass rate line:\n%s", env.Log())
	}
	if len(env.Score.Mismatches) != 0 {
		t.Errorf("unexpected mismatches: %v", env.Score.Mismatches)
	}
}

func TestBuggyDUTDetected(t *testing.T) {
	// Counter that adds 2 instead of 1: a value-misuse fault.
	buggy := strings.Replace(dataset.ByName("counter_12bit").Source,
		"count + 12'd1", "count + 12'd2", 1)
	env := newEnvFor(t, "counter_12bit", buggy)
	rate := env.Run(randomSeqFor(env, 100))
	if rate > 0.2 {
		t.Fatalf("buggy counter pass rate = %.2f, want near 0", rate)
	}
	if len(env.Score.Mismatches) == 0 {
		t.Fatal("no mismatches recorded")
	}
	mm := env.Score.Mismatches[0]
	if mm.Signal != "count" {
		t.Errorf("mismatch signal = %q, want count", mm.Signal)
	}
	if !strings.Contains(env.Log(), "UVM_ERROR") {
		t.Error("log missing UVM_ERROR lines")
	}
	if !strings.Contains(env.Log(), "signal=count") {
		t.Error("log missing mismatch signal")
	}
}

func TestMismatchCapRespected(t *testing.T) {
	buggy := strings.Replace(dataset.ByName("counter_12bit").Source,
		"count + 12'd1", "count + 12'd2", 1)
	m := dataset.ByName("counter_12bit")
	env, err := NewEnv(Config{
		Source: buggy, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 1, MaxErrors: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Run(randomSeqFor(env, 200))
	if len(env.Score.Mismatches) > 5 {
		t.Errorf("mismatch cap exceeded: %d", len(env.Score.Mismatches))
	}
	if env.Score.Total != 200 {
		t.Errorf("comparisons stopped early: %d", env.Score.Total)
	}
}

func TestAllGoldenModulesPassUVM(t *testing.T) {
	for _, m := range dataset.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			env := newEnvFor(t, m.Name, "")
			rate := env.Run(randomSeqFor(env, 150))
			if rate != 1.0 {
				t.Fatalf("pass rate = %.4f, want 1.0; first mismatches: %+v",
					rate, head(env.Score.Mismatches, 3))
			}
		})
	}
}

func head(mms []Mismatch, n int) []Mismatch {
	if len(mms) < n {
		return mms
	}
	return mms[:n]
}

func TestCoverageHighUnderRandom(t *testing.T) {
	env := newEnvFor(t, "alu", "")
	env.Run(randomSeqFor(env, 500))
	if got := env.Cov.Percent(); got < 90 {
		t.Errorf("ALU coverage under 500 random vectors = %.1f%%, want >= 90%%\n%s",
			got, env.Cov.Report())
	}
}

func TestCoverageLowUnderTinyDirected(t *testing.T) {
	env := newEnvFor(t, "alu", "")
	seq := &DirectedSequence{Vectors: []map[string]uint64{
		{"a": 1, "b": 1, "op": 0},
		{"a": 2, "b": 1, "op": 1},
	}}
	env.Run(seq)
	high := newEnvFor(t, "alu", "")
	high.Run(randomSeqFor(high, 500))
	if env.Cov.Percent() >= high.Cov.Percent() {
		t.Errorf("directed coverage %.1f%% not below random %.1f%%",
			env.Cov.Percent(), high.Cov.Percent())
	}
}

func TestDirectedSequencePlaysInOrder(t *testing.T) {
	seq := &DirectedSequence{Vectors: []map[string]uint64{{"a": 1}, {"a": 2}}}
	v1, ok1 := seq.Next(nil)
	v2, ok2 := seq.Next(nil)
	_, ok3 := seq.Next(nil)
	if !ok1 || !ok2 || ok3 {
		t.Fatal("sequence length handling wrong")
	}
	if v1["a"] != 1 || v2["a"] != 2 {
		t.Errorf("order wrong: %v %v", v1, v2)
	}
	if seq.Len() != 2 {
		t.Errorf("Len = %d", seq.Len())
	}
}

func TestEnvRejectsBrokenSource(t *testing.T) {
	m := dataset.ByName("mux4")
	_, err := NewEnv(Config{
		Source: "module mux4(input a output y); endmodule",
		Top:    m.Top, RefName: m.Name,
	})
	if err == nil {
		t.Fatal("NewEnv accepted syntactically broken source")
	}
}

func TestScoreboardPassRateEmpty(t *testing.T) {
	sb := &Scoreboard{}
	if sb.PassRate() != 0 {
		t.Error("empty scoreboard should score 0")
	}
}

func TestFSMDetectsSequencePattern(t *testing.T) {
	// End-to-end sanity on an FSM: feed 1011 and require z once.
	env := newEnvFor(t, "seq_detector", "")
	vec := func(x uint64) map[string]uint64 { return map[string]uint64{"x": x, "rst_n": 1} }
	seq := &DirectedSequence{Vectors: []map[string]uint64{
		vec(1), vec(0), vec(1), vec(1), vec(0), vec(0),
	}}
	rate := env.Run(seq)
	if rate != 1.0 {
		t.Fatalf("golden FSM mismatched its model: %.2f\n%s", rate, env.Log())
	}
	// z must have pulsed exactly once in the waveform (cycle index 5:
	// 2 reset cycles + 4th data cycle completes the pattern).
	w := env.Waveform()
	pulses := 0
	for c := 0; c < w.Cycles(); c++ {
		if w.At("z", c) == 1 {
			pulses++
		}
	}
	if pulses != 1 {
		t.Errorf("z pulsed %d times, want 1", pulses)
	}
}
