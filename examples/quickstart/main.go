// Quickstart: inject a realistic human-style fault into a verified RTL
// module, then let the UVLLM pipeline find and repair it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"strings"

	"uvllm/internal/core"
	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/llm"
)

func main() {
	// 1. Pick a verified benchmark module (an 8-bit accumulator).
	m := dataset.ByName("accu")
	fmt.Println("=== specification ===")
	fmt.Println(strings.TrimSpace(m.Spec))

	// 2. Inject a logic error (paper Table I: operator/value/variable
	//    misuse) with the paradigm error generator.
	faults := faultgen.Generate(m, faultgen.FuncLogic)
	f := faults[0]
	fmt.Printf("\n=== injected fault: %s ===\n%s\n", f.ID, f.Descr)

	// 3. The repair agent. Offline, the GPT-4-turbo stand-in is the
	//    calibrated oracle; with API access you would plug in any client
	//    implementing llm.Client here (the paper's modularity property).
	client := llm.NewOracle(llm.Knowledge{
		FaultID: f.ID, Golden: f.Golden, Class: string(f.Class),
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, llm.DefaultProfile(), 3)

	// 4. Run the four-stage pipeline: pre-processing, UVM testing,
	//    localization, repair — iterating with rollback.
	res := core.Verify(core.Input{
		Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name, Client: client,
		Opts: core.Options{Seed: 3},
	})

	fmt.Printf("\n=== verdict ===\nsuccess=%v fixed-in=%s iterations=%d pass_rate=%.1f%%\n",
		res.Success, res.FixedStage, res.Iterations, res.PassRate*100)
	fmt.Printf("modeled execution time: %.2fs (%d LLM calls)\n",
		res.Times.Total(), res.Usage.Calls)

	// 5. Show what changed.
	if res.Success {
		orig, patched, _ := llm.LineDiff(f.Source, res.Final)
		fmt.Printf("\n=== repair ===\n- %s\n+ %s\n",
			strings.TrimSpace(orig), strings.TrimSpace(patched))
	}
}
