package llm

import (
	"strings"
	"testing"
)

func TestCountTokens(t *testing.T) {
	cases := []struct {
		s    string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"abcd", 1},
		{"abcde", 2},
		{strings.Repeat("x", 400), 100},
	}
	for _, c := range cases {
		if got := CountTokens(c.s); got != c.want {
			t.Errorf("CountTokens(%d chars) = %d, want %d", len(c.s), got, c.want)
		}
	}
}

func TestScriptedClientAndMetered(t *testing.T) {
	sc := &Scripted{Responses: []string{"one", "two"}}
	m := &Metered{Inner: sc}
	r1, err := m.Complete(Request{Messages: []Message{{Role: "user", Content: "hi"}}})
	if err != nil || r1.Content != "one" {
		t.Fatalf("first = %q, %v", r1.Content, err)
	}
	if _, err := m.Complete(Request{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Complete(Request{}); err == nil {
		t.Error("exhausted scripted client should error")
	}
	if m.Usage.Calls != 2 || m.Usage.OutputTokens == 0 {
		t.Errorf("usage = %+v", m.Usage)
	}
}

func TestBuildRepairRequestSections(t *testing.T) {
	req := BuildRepairRequest(RepairContext{
		ModuleName: "accu",
		Spec:       "spec text",
		Source:     "module accu; endmodule",
		Stage:      StageMS,
		ErrorInfo:  "mismatch signal=sum",
		Iteration:  2,
		DamageRepairs: []PatchPair{
			{Original: "a + b", Patched: "a - b"},
		},
	})
	text := req.Text()
	for _, want := range []string{
		"=== Specification ===", "=== DUT ===",
		"=== Error Information (mismatch-signals) ===",
		"Damage Repairs", "a + b", "(iteration 2)", `"correct"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
	if req.ResponseFormat != "json_object" {
		t.Error("structured outputs not requested")
	}
	if DetectStage(req) != StageMS {
		t.Errorf("DetectStage = %v", DetectStage(req))
	}
}

func TestBuildRepairRequestCompleteMode(t *testing.T) {
	req := BuildRepairRequest(RepairContext{
		ModuleName: "m", Spec: "s", Source: "src", Stage: StageLint, Mode: ModeComplete,
	})
	if !strings.Contains(req.Text(), `"complete"`) {
		t.Error("complete-mode instruction missing")
	}
}

func TestParseRepairReply(t *testing.T) {
	content := `Sure! Here is the fix you asked for:
{"module name": "accu", "analysis": "off-by-one in the adder",
 "correct": [["sum <= sum + 2;", "sum <= sum + 1;"]]}
Hope this helps.`
	r, err := ParseRepairReply(content)
	if err != nil {
		t.Fatal(err)
	}
	if r.ModuleName != "accu" || len(r.Correct) != 1 {
		t.Fatalf("parsed = %+v", r)
	}
	if r.Correct[0].Patched != "sum <= sum + 1;" {
		t.Errorf("patched = %q", r.Correct[0].Patched)
	}
}

func TestParseRepairReplyNestedBracesInStrings(t *testing.T) {
	content := `{"module name": "m", "analysis": "braces { } in \"strings\" are fine", "correct": [["a", "b"]]}`
	r, err := ParseRepairReply(content)
	if err != nil {
		t.Fatal(err)
	}
	if r.Analysis == "" || len(r.Correct) != 1 {
		t.Fatalf("parsed = %+v", r)
	}
}

func TestParseRepairReplyErrors(t *testing.T) {
	if _, err := ParseRepairReply("no json here"); err == nil {
		t.Error("missing JSON accepted")
	}
	if _, err := ParseRepairReply(`{"correct": [["only one"]]}`); err == nil {
		t.Error("malformed pair accepted")
	}
	if _, err := ParseRepairReply(`{"unterminated": "`); err == nil {
		t.Error("unterminated JSON accepted")
	}
}

func TestFormatReplyRoundTrip(t *testing.T) {
	in := &RepairReply{
		ModuleName: "alu",
		Analysis:   "operator misuse",
		Correct:    []PatchPair{{Original: "y = a - b;", Patched: "y = a + b;"}},
	}
	out, err := ParseRepairReply(FormatReply(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.ModuleName != in.ModuleName || len(out.Correct) != 1 ||
		out.Correct[0] != in.Correct[0] {
		t.Errorf("round trip lost data: %+v", out)
	}
}

func TestLineDiff(t *testing.T) {
	golden := "a\nb\nc\nd"
	cases := []struct {
		name        string
		cur         string
		orig, patch string
		ndiff       int
	}{
		{"identical", "a\nb\nc\nd", "", "", 0},
		{"one line changed", "a\nB\nc\nd", "B", "b", 1},
		{"line deleted", "a\nc\nd", "a", "a\nb", 1},
		{"line added", "a\nb\nx\nc\nd", "x", "", 1},
	}
	for _, c := range cases {
		orig, patch, nd := LineDiff(c.cur, golden)
		if nd != c.ndiff {
			t.Errorf("%s: ndiff = %d, want %d", c.name, nd, c.ndiff)
			continue
		}
		if nd == 0 {
			continue
		}
		// Applying the patch must transform cur into golden.
		got := strings.Replace(c.cur, orig, patch, 1)
		if got != golden {
			t.Errorf("%s: applying (%q -> %q) gave %q, want %q", c.name, orig, patch, got, golden)
		}
	}
}

func TestLineDiffInsertionAtTop(t *testing.T) {
	golden := "first\na\nb"
	cur := "a\nb"
	orig, patch, nd := LineDiff(cur, golden)
	if nd == 0 {
		t.Fatal("no diff found")
	}
	if got := strings.Replace(cur, orig, patch, 1); got != golden {
		t.Errorf("apply gave %q, want %q", got, golden)
	}
}

const oracleGolden = `module toy(
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    assign y = a + b;
endmodule
`

func oracleFor(class string, complexity int, seed int64) *Oracle {
	return NewOracle(Knowledge{
		FaultID:    "toy/F1",
		Golden:     oracleGolden,
		Class:      class,
		Complexity: complexity,
	}, DefaultProfile(), seed)
}

func requestFor(src string, stage Stage, iter int) Request {
	return BuildRepairRequest(RepairContext{
		ModuleName: "toy", Spec: "toy adds a and b", Source: src,
		Stage: stage, ErrorInfo: "mismatch signal=y", Iteration: iter,
	})
}

func TestOracleSolvableInstanceReturnsTrueFix(t *testing.T) {
	faulty := strings.Replace(oracleGolden, "a + b", "a - b", 1)
	// Scan seeds for one where the draw succeeds at MS stage: the reply
	// must then be the exact golden patch.
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		o := oracleFor("FuncLogic", 1, seed)
		resp, err := o.Complete(requestFor(faulty, StageMS, 1))
		if err != nil {
			t.Fatal(err)
		}
		r, err := ParseRepairReply(resp.Content)
		if err != nil {
			t.Fatalf("oracle emitted unparseable reply: %v\n%s", err, resp.Content)
		}
		if len(r.Correct) != 1 {
			continue
		}
		fixed := strings.Replace(faulty, r.Correct[0].Original, r.Correct[0].Patched, 1)
		if fixed == oracleGolden {
			found = true
		}
	}
	if !found {
		t.Error("no seed produced the true fix at p=0.82; oracle success path broken")
	}
}

func TestOracleDeterministicPerStage(t *testing.T) {
	faulty := strings.Replace(oracleGolden, "a + b", "a - b", 1)
	o1 := oracleFor("FuncLogic", 1, 7)
	o2 := oracleFor("FuncLogic", 1, 7)
	r1, _ := o1.Complete(requestFor(faulty, StageMS, 1))
	r2, _ := o2.Complete(requestFor(faulty, StageMS, 1))
	if r1.Content != r2.Content {
		t.Error("oracle not deterministic for identical seed and prompt")
	}
}

func TestOracleCleanDUTSaysNoDefect(t *testing.T) {
	o := oracleFor("FuncLogic", 1, 3)
	resp, err := o.Complete(requestFor(oracleGolden, StageMS, 1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := ParseRepairReply(resp.Content)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Correct) != 0 || r.Complete != "" {
		t.Errorf("oracle proposed a repair for clean code: %+v", r)
	}
}

func TestOracleProbabilityStructure(t *testing.T) {
	prof := DefaultProfile()
	kSimple := Knowledge{Class: "FuncLogic", Complexity: 1}
	kHard := Knowledge{Class: "FuncLogic", Complexity: 4, IsFSM: true}
	if prof.Prob(StageMS, ModePair, kHard, 1) >= prof.Prob(StageMS, ModePair, kSimple, 1) {
		t.Error("complexity/FSM penalties not applied")
	}
	kSyn := Knowledge{Class: "SynMissingSemi", Complexity: 1}
	if prof.Prob(StageLint, ModePair, kSyn, 1) <= prof.Prob(StageMS, ModePair, kSyn, 1) {
		t.Error("lint info should help syntax repair the most")
	}
	if prof.Prob(StageMS, ModeComplete, kSimple, 1) >= prof.Prob(StageMS, ModePair, kSimple, 1) {
		t.Error("complete mode should be penalized (Table III)")
	}
	if prof.Prob(StageMS, ModePair, kSimple, 3) <= prof.Prob(StageMS, ModePair, kSimple, 1) {
		t.Error("iteration bonus missing")
	}
	if p := prof.Prob(StageLint, ModePair, kSyn, 50); p > 0.99 {
		t.Error("probability must be capped below 1")
	}
}

func TestOracleRateMatchesProfile(t *testing.T) {
	// Across many fault IDs, the fraction of solvable instances at a stage
	// must track the configured probability.
	prof := DefaultProfile()
	faulty := strings.Replace(oracleGolden, "a + b", "a - b", 1)
	n, hits := 600, 0
	for i := 0; i < n; i++ {
		k := Knowledge{
			FaultID: strings.Repeat("x", i%7) + "id" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + "/" + string(rune('A'+(i/26)%26)),
			Golden:  oracleGolden, Class: "FuncLogic", Complexity: 1,
		}
		o := NewOracle(k, prof, 42)
		resp, err := o.Complete(requestFor(faulty, StageMS, 1))
		if err != nil {
			t.Fatal(err)
		}
		r, err := ParseRepairReply(resp.Content)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Correct) == 1 &&
			strings.Replace(faulty, r.Correct[0].Original, r.Correct[0].Patched, 1) == oracleGolden {
			hits++
		}
	}
	want := prof.Prob(StageMS, ModePair, Knowledge{Class: "FuncLogic", Complexity: 1}, 1)
	got := float64(hits) / float64(n)
	if got < want-0.07 || got > want+0.07 {
		t.Errorf("empirical solve rate %.3f, profile says %.3f", got, want)
	}
}

func TestOracleHallucinationsDoNotRepeat(t *testing.T) {
	faulty := strings.Replace(oracleGolden, "a + b", "a - b", 1)
	// Find a seed where the instance is NOT solvable at MS so failures
	// hallucinate; then ask repeatedly and collect damaging patches.
	for seed := int64(0); seed < 60; seed++ {
		o := oracleFor("FuncDeclType", 5, seed)
		seen := map[string]int{}
		damaging := 0
		for i := 0; i < 8; i++ {
			resp, err := o.Complete(requestFor(faulty, StageSL, 1))
			if err != nil {
				t.Fatal(err)
			}
			r, err := ParseRepairReply(resp.Content)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Correct) != 1 {
				continue
			}
			pp := r.Correct[0]
			if pp.Original == pp.Patched {
				continue // harmless no-op
			}
			if strings.Replace(faulty, pp.Original, pp.Patched, 1) == oracleGolden {
				damaging = -1 // solvable seed; try next
				break
			}
			damaging++
			seen[pp.Original+"->"+pp.Patched]++
		}
		if damaging > 1 {
			for k, c := range seen {
				if c > 1 {
					t.Errorf("hallucinated patch repeated %d times: %s", c, k)
				}
			}
			return
		}
	}
	t.Skip("no unsolvable seed with multiple hallucinations found (acceptable)")
}

func TestBuildRefModelRequest(t *testing.T) {
	req := BuildRefModelRequest("accu", "the spec")
	if !strings.Contains(req.Text(), "reference model") || !strings.Contains(req.Text(), "accu") {
		t.Error("ref model prompt malformed")
	}
}
