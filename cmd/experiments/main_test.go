package main

import (
	"strings"
	"testing"
)

// TestValidateFlags is the table test for the experiments CLI's up-front
// flag validation.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		lanes   int
		backend string
		wantErr string // "" = valid
	}{
		{"defaults", 0, 0, "compiled", ""},
		{"explicit workers and lanes", 4, 8, "event", ""},
		{"negative workers", -2, 0, "compiled", "-workers"},
		{"negative lanes", 0, -1, "compiled", "-lanes"},
		{"unknown backend", 0, 0, "verilator", "backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.workers, tc.lanes, tc.backend)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
