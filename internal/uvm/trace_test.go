package uvm

import (
	"reflect"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/refmodel"
	"uvllm/internal/sim"
)

func aluPorts(t *testing.T) []sim.PortInfo {
	t.Helper()
	m := dataset.ByName("alu")
	p, err := sim.CompileSource(m.Source, m.Top, sim.BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	return p.Design().Inputs()
}

// TestMaterializeDeterministic pins that materializing a sequence yields
// the identical stream a live run would draw.
func TestMaterializeDeterministic(t *testing.T) {
	ports := aluPorts(t)
	a := Materialize(&RandomSequence{Ports: ports, N: 50}, 11)
	b := Materialize(&RandomSequence{Ports: ports, N: 50}, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := Materialize(&RandomSequence{Ports: ports, N: 50}, 12)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the same stream")
	}
}

// TestTraceMemoMatchesModel checks a memoized trace is exactly what a
// fresh reference model computes, and that replays hit.
func TestTraceMemoMatchesModel(t *testing.T) {
	m := dataset.ByName("counter_12bit")
	vectors := []map[string]uint64{
		{"rst_n": 1, "en": 1}, {"rst_n": 1, "en": 0}, {"rst_n": 1, "en": 1}, {"rst_n": 0, "en": 1}, {"rst_n": 1, "en": 1},
	}
	tm := NewTraceMemo()
	got, err := tm.Expected(m.Name, true, vectors)
	if err != nil {
		t.Fatal(err)
	}
	model, err := refmodel.New(m.Name)
	if err != nil {
		t.Fatal(err)
	}
	model.Reset()
	for i, in := range vectors {
		want := model.Step(in)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("cycle %d: memo %v != model %v", i, got[i], want)
		}
	}
	if _, err := tm.Expected(m.Name, true, vectors); err != nil {
		t.Fatal(err)
	}
	st := tm.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	// A different reset phase is a different trace.
	if _, err := tm.Expected(m.Name, false, vectors); err != nil {
		t.Fatal(err)
	}
	if st := tm.Stats(); st.Misses != 2 {
		t.Fatalf("reset flag not part of the key: %+v", st)
	}
}

// TestTraceMemoMutationCannotPoison is the memo-poisoning regression
// gate: a caller scribbling over the slice and maps Expected returned
// must not corrupt what a later identical lookup sees. Batch lanes
// share golden traces, so a leaked reference here would be a silent
// cross-lane corruption vector.
func TestTraceMemoMutationCannotPoison(t *testing.T) {
	m := dataset.ByName("counter_12bit")
	vectors := []map[string]uint64{
		{"rst_n": 1, "en": 1}, {"rst_n": 1, "en": 1}, {"rst_n": 1, "en": 0},
	}
	tm := NewTraceMemo()
	first, err := tm.Expected(m.Name, true, vectors)
	if err != nil {
		t.Fatal(err)
	}
	pristine := make([]map[string]uint64, len(first))
	for i, row := range first {
		cp := map[string]uint64{}
		for k, v := range row {
			cp[k] = v
		}
		pristine[i] = cp
	}
	// Hostile caller: rewrite every cell, add keys, nil out rows.
	for _, row := range first {
		for k := range row {
			row[k] = ^uint64(0)
		}
		row["injected"] = 7
	}
	first[0] = nil
	second, err := tm.Expected(m.Name, true, vectors)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, pristine) {
		t.Fatalf("memo hit returned a poisoned trace:\n got %v\nwant %v", second, pristine)
	}
	if st := tm.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("second fetch was not a memo hit: %+v", st)
	}
	// And the two fetches must not alias each other.
	second[1]["en"] = 99
	third, err := tm.Expected(m.Name, true, vectors)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third, pristine) {
		t.Fatal("fetches alias one another")
	}
}

// TestRunWithMemoIsByteIdentical runs the same environment configuration
// with and without the golden-trace memo (and with a shared compiled
// Program) and requires identical pass rates, scoreboards and logs — the
// memo is an amortization, never a semantic change.
func TestRunWithMemoIsByteIdentical(t *testing.T) {
	for _, name := range []string{"counter_12bit", "alu", "fifo_sync"} {
		m := dataset.ByName(name)
		prog, err := sim.CompileSource(m.Source, m.Top, sim.BackendCompiled)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		runOnce := func(memo *TraceMemo) (float64, string, *Scoreboard) {
			env, err := NewEnv(Config{
				Source: m.Source, Top: m.Top, Clock: m.Clock, RefName: m.Name,
				Seed: 42, Program: prog, Memo: memo,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			var ports []sim.PortInfo
			for _, p := range env.DUT.Sim.Design().Inputs() {
				if p.Name != m.Clock {
					ports = append(ports, p)
				}
			}
			reset := ""
			if m.HasReset {
				reset = "rst_n"
			}
			rate := env.Run(&RandomSequence{Ports: ports, N: 120, ResetName: reset, ResetEvery: 40})
			return rate, env.Log(), env.Score
		}
		memo := NewTraceMemo()
		rateM1, logM1, sbM1 := runOnce(memo)
		rateM2, logM2, sbM2 := runOnce(memo) // second run: memo hit path
		rateD, logD, sbD := runOnce(nil)
		if rateM1 != rateD || logM1 != logD || !reflect.DeepEqual(sbM1, sbD) {
			t.Errorf("%s: memoized run differs from direct run", name)
		}
		if rateM2 != rateD || logM2 != logD || !reflect.DeepEqual(sbM2, sbD) {
			t.Errorf("%s: memo-hit run differs from direct run", name)
		}
		if st := memo.Stats(); st.Hits == 0 {
			t.Errorf("%s: second run did not hit the memo (%+v)", name, st)
		}
	}
}
