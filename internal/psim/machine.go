package psim

import "uvllm/internal/formal"

// op is one compiled AND gate: vals[out] = (vals[a]^aNeg) & (vals[b]^bNeg).
// Negations are pre-expanded to full-word XOR masks so the sweep loop is
// two loads, two xors, one and, one store per gate — no branches.
type op struct {
	a, b       uint32
	aNeg, bNeg uint64
	out        uint32
}

// Machine is a word-level evaluator for a formal.AIG: each node holds one
// uint64, one bit per lane, so a single sweep evaluates the graph for 64
// independent assignments at once. A machine built over a graph holding
// several circuits (NewCircuitShared) evaluates all of them in the one
// sweep — shared structure is computed once.
type Machine struct {
	vals []uint64
	ops  []op
}

// NewMachine compiles g into a straight-line op list. AIG nodes are
// created in topological order, so the list in node order is a complete
// evaluation order. The machine snapshots the graph's current size; nodes
// added to g afterwards are not evaluated.
func NewMachine(g *formal.AIG) *Machine {
	n := g.NumNodes()
	m := &Machine{vals: make([]uint64, n)}
	for i := uint32(1); i < uint32(n); i++ {
		a, b, isAnd := g.Fanins(i)
		if !isAnd {
			continue
		}
		m.ops = append(m.ops, op{
			a: a.Node(), b: b.Node(),
			aNeg: negMask(a), bNeg: negMask(b),
			out: i,
		})
	}
	return m
}

// negMask expands a literal's negation bit to a full-word XOR mask.
func negMask(l formal.Lit) uint64 {
	if l.Neg() {
		return ^uint64(0)
	}
	return 0
}

// Ops returns the number of compiled AND gates (the per-sweep work).
func (m *Machine) Ops() int { return len(m.ops) }

// SetVar assigns a 64-lane word to an input variable literal before a
// sweep. Negated literals store the complement so a later Word read
// through any polarity is consistent.
func (m *Machine) SetVar(l formal.Lit, w uint64) {
	m.vals[l.Node()] = w ^ negMask(l)
}

// Sweep evaluates every AND gate once in topological order. Input
// variables keep whatever SetVar last stored (unset variables read zero);
// the constant node reads zero by construction.
func (m *Machine) Sweep() {
	vals := m.vals
	for _, o := range m.ops {
		vals[o.out] = (vals[o.a] ^ o.aNeg) & (vals[o.b] ^ o.bNeg)
	}
}

// Word reads a literal's 64-lane word after a sweep.
func (m *Machine) Word(l formal.Lit) uint64 {
	return m.vals[l.Node()] ^ negMask(l)
}
