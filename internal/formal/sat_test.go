package formal

import (
	"math/rand"
	"testing"
)

// TestSolverTrivial pins the degenerate cases.
func TestSolverTrivial(t *testing.T) {
	s := NewSolver(2)
	if !s.Solve() {
		t.Fatal("empty formula must be SAT")
	}
	s = NewSolver(2)
	s.AddClause(1)
	s.AddClause(-1)
	if s.Solve() {
		t.Fatal("x AND ~x must be UNSAT")
	}
	s = NewSolver(2)
	s.AddClause()
	if s.Solve() {
		t.Fatal("empty clause must be UNSAT")
	}
	s = NewSolver(3)
	s.AddClause(1, 2)
	s.AddClause(-1, 2)
	s.AddClause(1, -2)
	if !s.Solve() || !(s.Value(1) && s.Value(2)) {
		t.Fatalf("unique model not found: x1=%v x2=%v", s.Value(1), s.Value(2))
	}
}

// pigeonhole builds the classic PHP(n+1, n) instance: n+1 pigeons into n
// holes, provably UNSAT and requiring genuine conflict-driven search.
func pigeonhole(pigeons, holes int) *CNF {
	c := &CNF{NumVars: pigeons * holes}
	v := func(p, h int) int { return p*holes + h + 1 }
	for p := 0; p < pigeons; p++ {
		var cl []int
		for h := 0; h < holes; h++ {
			cl = append(cl, v(p, h))
		}
		c.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				c.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	return c
}

// TestSolverPigeonhole is the solver's UNSAT workout: PHP(7,6) has no
// short resolution proofs, so it exercises learning, VSIDS and restarts.
func TestSolverPigeonhole(t *testing.T) {
	s := NewSolverCNF(pigeonhole(7, 6))
	if s.Solve() {
		t.Fatal("PHP(7,6) must be UNSAT")
	}
	if s.Stats().Conflicts == 0 {
		t.Fatal("pigeonhole solved without a single conflict: learning path untested")
	}
	s = NewSolverCNF(pigeonhole(6, 6))
	if !s.Solve() {
		t.Fatal("PHP(6,6) must be SAT")
	}
}

// TestSolverRandom3SAT cross-checks the solver against brute force on
// random small instances, both phases of the phase transition.
func TestSolverRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		nVars := 4 + rng.Intn(9) // 4..12
		nClauses := 2 + rng.Intn(6*nVars)
		c := &CNF{NumVars: nVars}
		for i := 0; i < nClauses; i++ {
			var cl []int
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl = append(cl, v)
			}
			c.AddClause(cl...)
		}
		want := bruteForceSAT(c)
		s := NewSolverCNF(c)
		got := s.Solve()
		if got != want {
			t.Fatalf("trial %d (%d vars, %d clauses): solver=%v brute=%v", trial, nVars, nClauses, got, want)
		}
		if got {
			// The returned model must satisfy every clause.
			for _, cl := range c.Clauses {
				ok := false
				for _, l := range cl {
					if l > 0 && s.Value(l) || l < 0 && !s.Value(-l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: model does not satisfy clause %v", trial, cl)
				}
			}
		}
	}
}

func bruteForceSAT(c *CNF) bool {
	n := c.NumVars
	for m := 0; m < 1<<uint(n); m++ {
		ok := true
		for _, cl := range c.Clauses {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := m>>uint(v-1)&1 == 1
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestTseitinAdderMiter proves (a+b)+c == a+(b+c) at 12 bits by refuting
// the miter — a structurally distinct equivalence no hashing shortcut can
// collapse, so the UNSAT answer is real CDCL work end to end through the
// Tseitin conversion.
func TestTseitinAdderMiter(t *testing.T) {
	g := NewAIG()
	const w = 12
	a, b, c := g.VarVec(w), g.VarVec(w), g.VarVec(w)
	lhs := g.AddVec(g.AddVec(a, b), c)
	rhs := g.AddVec(a, g.AddVec(b, c))
	miter := g.EqVec(lhs, rhs).Not()
	cnf, _ := g.Tseitin([]Lit{miter})
	s := NewSolverCNF(cnf)
	if s.Solve() {
		t.Fatal("adder reassociation miter must be UNSAT")
	}

	// Sanity of the SAT side: (a+b) != (a+b+1) has models, and the model
	// decodes to a genuine witness through the same pipeline.
	bad := g.EqVec(g.AddVec(a, b), g.AddVec(g.AddVec(a, b), g.ConstVec(1, w))).Not()
	cnf2, vars := g.Tseitin([]Lit{bad})
	s2 := NewSolverCNF(cnf2)
	if !s2.Solve() {
		t.Fatal("off-by-one miter must be SAT")
	}
	assign := func(n uint32) bool { return s2.Value(vars[n]) }
	if res := g.Eval(assign, []Lit{bad}); !res[0] {
		t.Fatal("SAT model does not satisfy the miter root under AIG evaluation")
	}
}

// TestTseitinConstRoots pins the constant-root conventions.
func TestTseitinConstRoots(t *testing.T) {
	g := NewAIG()
	cnf, _ := g.Tseitin([]Lit{False})
	if NewSolverCNF(cnf).Solve() {
		t.Fatal("constant-false root must be UNSAT")
	}
	cnf, _ = g.Tseitin([]Lit{True})
	if !NewSolverCNF(cnf).Solve() {
		t.Fatal("constant-true root must be SAT")
	}
}

// TestSolverMultiplierCommutes proves 6-bit multiplier commutativity —
// a denser miter exercising the heap and watch machinery harder.
func TestSolverMultiplierCommutes(t *testing.T) {
	g := NewAIG()
	const w = 6
	a, b := g.VarVec(w), g.VarVec(w)
	miter := g.EqVec(g.MulVec(a, b), g.MulVec(b, a)).Not()
	cnf, _ := g.Tseitin([]Lit{miter})
	s := NewSolverCNF(cnf)
	if s.Solve() {
		t.Fatal("multiplication must commute")
	}
}
