package baseline

import (
	"strings"
	"testing"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/llm"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

func oracleFor(f *faultgen.Fault, seed int64) llm.Client {
	m := f.Meta()
	return llm.NewOracle(llm.Knowledge{
		FaultID: f.ID, Golden: f.Golden, Class: string(f.Class),
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, llm.DefaultProfile(), seed)
}

func firstFault(t *testing.T, module string, class faultgen.Class) *faultgen.Fault {
	t.Helper()
	fs := faultgen.Generate(dataset.ByName(module), class)
	if len(fs) == 0 {
		t.Skipf("no %s fault for %s", class, module)
	}
	return fs[0]
}

func expertCheck(t *testing.T, source, module string) bool {
	t.Helper()
	m := dataset.ByName(module)
	env, err := uvm.NewEnv(uvm.Config{
		Source: source, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 999,
	})
	if err != nil {
		return false
	}
	ok, _, _ := RandomOwnBench(source, m, 600, 999, SimServices{Backend: sim.BackendCompiled})
	_ = env
	return ok
}

func TestWeakBenchShape(t *testing.T) {
	m := dataset.ByName("alu")
	d, err := elaborateFor(m, SimServices{})
	if err != nil {
		t.Fatal(err)
	}
	vs := WeakBench(m, d)
	if len(vs) != 12 {
		t.Fatalf("weak bench has %d vectors, want 12", len(vs))
	}
	for _, v := range vs {
		if _, ok := v["a"]; !ok {
			t.Fatal("vector missing input a")
		}
	}
}

func TestGoldenPassesOwnBenches(t *testing.T) {
	for _, m := range dataset.All() {
		d, err := elaborateFor(m, SimServices{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		pass, log, _ := RunOwnBench(m.Source, m, WeakBench(m, d), SimServices{})
		if !pass {
			t.Errorf("%s: golden fails weak bench:\n%s", m.Name, log)
		}
		pass, log, _ = RandomOwnBench(m.Source, m, 48, 5, SimServices{})
		if !pass {
			t.Errorf("%s: golden fails random bench:\n%s", m.Name, log)
		}
	}
}

func TestMEICRepairsEasyFault(t *testing.T) {
	f := firstFault(t, "counter_12bit", faultgen.FuncLogic)
	fixed := false
	for seed := int64(1); seed <= 15 && !fixed; seed++ {
		x := NewMEIC(oracleFor(f, seed))
		out := x.Repair(f)
		if out.Hit && expertCheck(t, out.Final, f.Module) {
			fixed = true
			if out.Seconds <= 0 || out.Usage.Calls == 0 {
				t.Error("MEIC accounting missing")
			}
		}
	}
	if !fixed {
		t.Fatal("MEIC never repaired an easy counter fault")
	}
}

func TestMEICUsesMoreTokensThanOneCall(t *testing.T) {
	f := firstFault(t, "seq_detector", faultgen.FuncLogic)
	x := NewMEIC(oracleFor(f, 1))
	out := x.Repair(f)
	if out.Usage.Calls < 2 {
		t.Errorf("MEIC made %d calls; dual-agent loop should make more", out.Usage.Calls)
	}
}

func TestRawLLMOneShot(t *testing.T) {
	f := firstFault(t, "gray_code", faultgen.FuncLogic)
	anyHit := false
	for seed := int64(1); seed <= 20 && !anyHit; seed++ {
		x := NewRawLLM(oracleFor(f, seed))
		out := x.Repair(f)
		if out.Usage.Calls != 1 {
			t.Fatalf("raw baseline made %d calls, want 1", out.Usage.Calls)
		}
		anyHit = out.Hit
	}
	if !anyHit {
		t.Error("raw LLM never hit on an easy fault across 20 seeds")
	}
}

func TestStriderRepairsValueFault(t *testing.T) {
	// Strider's transition-guided search excels at constant/operator
	// faults on simple modules.
	f := firstFault(t, "counter_12bit", faultgen.FuncLogic)
	x := NewStrider()
	out := x.Repair(f)
	if !out.Hit {
		t.Fatalf("Strider failed on %s (%s)", f.ID, f.Descr)
	}
	if !expertCheck(t, out.Final, f.Module) {
		t.Log("Strider hit overfits expert validation (possible but rare here)")
	}
	if out.Usage.Calls != 0 {
		t.Error("template repair must not use the LLM")
	}
}

func TestStriderSkipsSyntaxFaults(t *testing.T) {
	f := firstFault(t, "counter_12bit", faultgen.SynKeywordTypo)
	out := NewStrider().Repair(f)
	if out.Hit {
		t.Error("Strider cannot repair syntax-broken code")
	}
}

func TestRTLRepairFixesBitwidthDecl(t *testing.T) {
	f := firstFault(t, "counter_12bit", faultgen.FuncDeclType)
	if !strings.Contains(f.Descr, "narrowed declaration") {
		t.Skipf("first decl fault is %q", f.Descr)
	}
	out := NewRTLRepair().Repair(f)
	if !out.Hit {
		t.Fatalf("RTL-Repair failed on its specialty: %s (%s)", f.ID, f.Descr)
	}
	if !expertCheck(t, out.Final, f.Module) {
		t.Errorf("RTL-Repair's width fix fails expert validation:\n%s", out.Final)
	}
}

func TestTemplateSearchBudgetBounded(t *testing.T) {
	f := firstFault(t, "vending_machine", faultgen.FuncLogic)
	x := &Strider{Cost: defaultCost, Budget: 5, BenchN: 16}
	out := x.Repair(f)
	// 5 candidates * 16 vectors + initial run 16 => at most 96 vectors.
	if out.Seconds > defaultCost.Sim(16*6)+1e-9 {
		t.Errorf("budget exceeded: %.3f s modeled", out.Seconds)
	}
}

func TestEnumerateMutationsPrioritizesSuspicious(t *testing.T) {
	src := "module m(input a, output y);\nassign y = a + 1'b1;\nassign y2 = a;\nendmodule"
	muts := enumerateMutations(src, map[int]bool{2: true}, false)
	if len(muts) == 0 {
		t.Fatal("no mutations")
	}
	// The first mutation must touch line 2 (the suspicious one).
	first := strings.Split(muts[0], "\n")[1]
	if first == "assign y = a + 1'b1;" {
		t.Errorf("first mutation did not touch the suspicious line: %q", first)
	}
}
