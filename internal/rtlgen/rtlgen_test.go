package rtlgen

import (
	"strings"
	"testing"

	"uvllm/internal/verilog"
)

// TestSweep is the acceptance gate for the generator + differential
// subsystem: it sweeps a deterministic band of seeds and requires that (a)
// at least 300 distinct designs elaborate and diff clean across backends,
// (b) every design lands on exactly the scheduling path its flavor was
// constructed for, (c) at least 25% of designs exercise the
// event-fallback path, so the fuzzer keeps covering both engines, (d)
// on a strided subset of the small levelized designs the formal engine's
// bounded-equivalence verdicts agree with simulation (the fourth oracle:
// golden provably self-equivalent, mutant refutations replayable, bounded
// proofs unrefuted by random probes), and (e) on a strided subset the
// bit-parallel lane simulator diffs byte-identical against batch and
// standalone runs (the fifth oracle), with both its engine and fallback
// paths exercised.
func TestSweep(t *testing.T) {
	const (
		seeds        = 330
		formalStride = formalSweepStride // sparser under -race, see stride_off_test.go
		formalDepth  = 4
		bitStride    = 3
	)
	distinct := map[string]bool{}
	total, fallback := 0, 0
	formalChecked, formalMutants, formalRefuted := 0, 0, 0
	bitChecked, bitParallel := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		d := Generate(seed)
		rep, err := DiffBackends(d.Source, d.Top, d.Clock, 40, seed)
		if err != nil {
			t.Fatalf("seed %d (%s): backends diverged: %v\n%s", seed, d.Flavor, err, d.Source)
		}
		if !rep.Elaborated {
			t.Fatalf("seed %d (%s): generated design failed to elaborate\n%s", seed, d.Flavor, d.Source)
		}
		if d.Flavor.WantsFallback() == rep.Levelized {
			t.Fatalf("seed %d: flavor %s but levelized=%v (reason %q)\n%s",
				seed, d.Flavor, rep.Levelized, rep.FallbackReason, d.Source)
		}
		total++
		if !rep.Levelized {
			fallback++
		}
		if rep.Levelized && seed%formalStride == 1 {
			frep, err := DiffFormal(d, formalDepth, 1)
			if err != nil {
				t.Fatalf("seed %d: formal oracle disagreed with simulation: %v\n%s", seed, err, d.Source)
			}
			if frep.Supported {
				formalChecked++
				formalMutants += frep.Mutants
				formalRefuted += frep.Refuted
			}
		}
		if seed%bitStride == 1 {
			bp, err := DiffBitSim(d.Source, d.Top, d.Clock, 5, 20, seed)
			if err != nil {
				t.Fatalf("seed %d: bit-parallel oracle diverged: %v\n%s", seed, err, d.Source)
			}
			bitChecked++
			if bp {
				bitParallel++
			}
		}
		// Distinctness is judged on the body: the module name embeds the
		// seed and would make every source trivially unique.
		distinct[bodyOf(d.Source)] = true
	}
	if len(distinct) < 300 {
		t.Fatalf("only %d distinct designs out of %d seeds (want >= 300)", len(distinct), total)
	}
	if frac := float64(fallback) / float64(total); frac < 0.25 {
		t.Fatalf("only %.1f%% of designs exercised the event-fallback path (want >= 25%%)", frac*100)
	}
	if min := 60 / formalStride; formalChecked < min {
		t.Fatalf("formal oracle covered only %d levelized designs (want >= %d)", formalChecked, min)
	}
	if formalRefuted == 0 {
		t.Fatal("formal oracle refuted no mutants: the SAT/replay path went unexercised")
	}
	if bitParallel == 0 {
		t.Fatal("bit-parallel oracle never took the engine path")
	}
	if bitParallel == bitChecked {
		t.Fatal("bit-parallel oracle never exercised the sim.Batch fallback")
	}
	t.Logf("swept %d designs (%d distinct, %d event-fallback = %.1f%%); formal agreed on %d designs / %d mutants (%d refuted); bit-parallel agreed on %d designs (%d on the engine path)",
		total, len(distinct), fallback, 100*float64(fallback)/float64(total),
		formalChecked, formalMutants, formalRefuted, bitChecked, bitParallel)
}

func bodyOf(src string) string {
	if i := strings.Index(src, "\n"); i >= 0 {
		return src[i+1:]
	}
	return src
}

// TestDeterminism pins the generator contract: the same seed yields
// byte-identical source, and neighboring seeds yield different designs.
func TestDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Source != b.Source {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
	if Generate(1).Source == Generate(2).Source {
		t.Fatal("seeds 1 and 2 generated identical designs")
	}
}

// TestGeneratedRoundTrip requires every generated design to be a printer
// fixpoint: the generator emits canonical ASTs, so parse+print must
// reproduce the source bytes, and the general round-trip oracle must hold.
func TestGeneratedRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 150; seed++ {
		d := Generate(seed)
		f, errs := verilog.Parse(d.Source)
		if len(errs) > 0 {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, errs[0], d.Source)
		}
		if got := verilog.Print(f); got != d.Source {
			t.Fatalf("seed %d: generated source is not canonical\n--- generated ---\n%s\n--- reprinted ---\n%s",
				seed, d.Source, got)
		}
		if err := RoundTrip(d.Source); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestMutantDivergence is the third oracle: faultgen's functional classes
// applied to generated designs must keep both backends in agreement on
// every mutant, and a healthy share of mutants must diverge observably
// from their golden original (mutations that stopped biting would mean the
// fault generator no longer stresses generated RTL).
func TestMutantDivergence(t *testing.T) {
	var agg MutantStats
	for seed := int64(1); seed <= 40; seed++ {
		d := Generate(seed)
		st, err := DiffMutants(d, 50, 2)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, d.Source)
		}
		agg.Total += st.Total
		agg.Diverged += st.Diverged
	}
	if agg.Total < 40 {
		t.Fatalf("only %d functional mutants were diffable (want >= 40)", agg.Total)
	}
	// Equivalent mutants are expected (mutations landing in dead branches),
	// but a healthy share must reach the checksum output.
	if frac := float64(agg.Diverged) / float64(agg.Total); frac < 0.15 {
		t.Fatalf("only %.1f%% of %d mutants diverged from golden (want >= 15%%)", frac*100, agg.Total)
	}
	t.Logf("diffed %d mutants, %d diverged from golden (%.1f%%)",
		agg.Total, agg.Diverged, 100*float64(agg.Diverged)/float64(agg.Total))
}

// TestFlavorCoverage checks that the seed band exercises every fallback
// flavor at least once — a generator regression that stopped emitting one
// construct class would silently narrow fuzz coverage.
func TestFlavorCoverage(t *testing.T) {
	seen := map[Flavor]int{}
	for seed := int64(1); seed <= 330; seed++ {
		seen[Generate(seed).Flavor]++
	}
	for _, fl := range append([]Flavor{FlavorLevelized}, fallbackFlavors...) {
		if seen[fl] == 0 {
			t.Errorf("flavor %s never generated in the seed band", fl)
		}
	}
	t.Logf("flavor histogram: %v", seen)
}
