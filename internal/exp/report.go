package exp

import (
	"fmt"
	"strings"
)

// Headline summarizes the paper's headline claims against the measured
// run: syntax FR, functional FR, overall FR, coverage and MEIC speedup.
type Headline struct {
	SyntaxFR      float64 // paper: 86.99
	FuncFR        float64 // paper: 71.92
	OverallFR     float64 // paper: 79.75
	SyntaxHRFRGap float64 // paper: ~0
	FuncHRFRGap   float64 // paper: 1.4
	MeanCoverage  float64 // paper: "nearly 100% test coverage"
	Speedup       float64 // paper: 10.42x vs MEIC
}

// ComputeHeadline derives the headline numbers from the session's cached
// records.
func (s *Session) ComputeHeadline() Headline {
	rows := Table2(s.Records())
	var h Headline
	for _, r := range rows {
		switch r.Group {
		case "Syntax":
			h.SyntaxFR = r.FR
		case "Function":
			h.FuncFR = r.FR
		case "Overall":
			h.OverallFR = r.FR
			h.Speedup = r.Speedup
		}
	}
	syn := computeRates(s.SyntaxRecords(), uvllmHit, uvllmFix)
	fn := computeRates(s.FunctionalRecords(), uvllmHit, uvllmFix)
	h.SyntaxHRFRGap = syn.HR - syn.FR
	h.FuncHRFRGap = fn.HR - fn.FR
	cov, n := 0.0, 0
	for _, r := range s.Records() {
		if r.UVLLM.Coverage > 0 {
			cov += r.UVLLM.Coverage
			n++
		}
	}
	if n > 0 {
		h.MeanCoverage = cov / float64(n)
	}
	return h
}

// FormatHeadline renders the paper-vs-measured comparison.
func FormatHeadline(h Headline) string {
	var b strings.Builder
	b.WriteString("Headline: paper vs measured\n")
	row := func(name string, paper, got float64, unit string) {
		fmt.Fprintf(&b, "  %-28s paper %8.2f%s   measured %8.2f%s\n", name, paper, unit, got, unit)
	}
	row("Syntax FR", 86.99, h.SyntaxFR, "%")
	row("Functional FR", 71.92, h.FuncFR, "%")
	row("Overall FR", 79.75, h.OverallFR, "%")
	row("Syntax HR-FR gap", 0.00, h.SyntaxHRFRGap, "%")
	row("Functional HR-FR gap", 1.40, h.FuncHRFRGap, "%")
	row("UVM coverage", 100.00, h.MeanCoverage, "%")
	row("Speedup vs MEIC", 10.42, h.Speedup, "x")
	return b.String()
}

// FullReport renders every figure and table plus the headline block.
func (s *Session) FullReport() string {
	var b strings.Builder
	recs := s.Records()
	b.WriteString(FormatHeadline(s.ComputeHeadline()))
	b.WriteString("\n")
	b.WriteString(FormatFig5(Fig5(recs)))
	b.WriteString("\n")
	b.WriteString(FormatFig6(Fig6(recs)))
	b.WriteString("\n")
	b.WriteString(FormatFig7(Fig7(recs)))
	b.WriteString("\n")
	b.WriteString(FormatTable2(Table2(recs)))
	b.WriteString("\n")
	b.WriteString(FormatTable3(s.Table3()))
	return b.String()
}
