package sim

import (
	"testing"

	"uvllm/internal/verilog"
)

const viewSrc = `module leaf(
    input [3:0] a,
    output [3:0] y
);
    parameter INC = 1;
    assign y = a + INC;
endmodule
module top(
    input clk,
    input [3:0] x,
    output reg [3:0] q,
    output [3:0] w
);
    leaf #(.INC(2)) u1(.a(x), .y(w));
    always @(posedge clk) begin
        q <= w;
    end
endmodule
`

// TestDesignView pins the elaborated-view contract the formal engine
// depends on: signals resolve by hierarchical name, scopes resolve both
// signals and overridden parameters, process kinds and edges are visible,
// and the levelized comb order covers every combinational process.
func TestDesignView(t *testing.T) {
	p, err := CompileSource(viewSrc, "top", BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Design()
	if !p.Levelized() {
		t.Fatalf("view fixture should be cleanly levelizable (reason %q)", p.FallbackReason())
	}
	if d.NumSignals() == 0 || d.NumProcs() == 0 {
		t.Fatal("empty view")
	}
	idx, ok := d.SignalIndex("u1.y")
	if !ok {
		t.Fatal("hierarchical signal u1.y not found")
	}
	sv := d.Signal(idx)
	if sv.Width != 4 || sv.IsMem || sv.Name != "u1.y" {
		t.Fatalf("unexpected signal view %+v", sv)
	}

	var seq, comb, withParam int
	for i := 0; i < d.NumProcs(); i++ {
		pv := d.Proc(i)
		switch pv.Kind {
		case ProcSeq:
			seq++
			if len(pv.Edges) != 1 || !pv.Edges[0].Pos {
				t.Fatalf("seq proc edges = %+v", pv.Edges)
			}
			if got := d.EdgeProcsOf(pv.Edges[0].Sig, true); len(got) != 1 || got[0] != pv.Index {
				t.Fatalf("EdgeProcsOf = %v, want [%d]", got, pv.Index)
			}
		case ProcComb:
			comb++
			sc := pv.Scope
			if pv.ConnRHS != nil {
				sc = pv.ConnRHSScope
			}
			if v, ok := sc.Param("INC"); ok {
				withParam++
				if v != 2 {
					t.Fatalf("parameter override not visible: INC = %d", v)
				}
				if ev, err := verilog.EvalConst(&verilog.Ident{Name: "INC"}, sc.Params()); err != nil || ev != 2 {
					t.Fatalf("EvalConst over Params() = %d, %v", ev, err)
				}
			}
		}
	}
	if seq != 1 {
		t.Fatalf("want 1 sequential proc, got %d", seq)
	}
	order := p.CombOrder()
	if len(order) != comb {
		t.Fatalf("CombOrder has %d entries, %d comb procs", len(order), comb)
	}
	if withParam == 0 {
		t.Fatal("no scope exposed the overridden leaf parameter")
	}

	// Event-driven programs expose no comb order.
	pe, err := CompileSource(viewSrc, "top", BackendEventDriven)
	if err != nil {
		t.Fatal(err)
	}
	if pe.CombOrder() != nil {
		t.Fatal("event-driven program should have nil CombOrder")
	}
}
