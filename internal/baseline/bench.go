// Package baseline reimplements the comparison methods of the UVLLM
// evaluation (paper Figs. 5–6, Table II) at the fidelity the comparison
// needs:
//
//   - MEIC: an iterative dual-agent LLM debugger whose testbench is a
//     small set of directed vectors — the finite-test design that causes
//     its published HR≫FR overfitting;
//   - RawLLM: one-shot GPT-4-turbo repair with no error information;
//   - Strider: signal-transition-guided template repair (search over
//     mutations of suspicious lines, accepted by its own testbench);
//   - RTLRepair: template/symbolic repair with declaration-width and
//     part-select templates, strongest on bitwidth defects.
//
// The overfitting the paper reports is emergent here, not scripted: weak
// testbenches genuinely accept wrong repairs, which the expert validation
// suite in internal/exp then rejects.
package baseline

import (
	"fmt"

	"uvllm/internal/dataset"
	"uvllm/internal/llm"
	"uvllm/internal/metrics"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// Outcome is one baseline run on one benchmark instance.
type Outcome struct {
	Hit     bool    // the method's own testbench passes on its final code
	Final   string  // final source
	Seconds float64 // modeled execution time
	Usage   llm.Usage
}

// SimServices bundles the shared simulation machinery of one evaluation
// job: the engine selection, the content-addressed compile cache and the
// golden-trace memo. The zero value is valid (compiled backend, no
// sharing); the evaluation harness hands every baseline the same bundle
// so MEIC, raw GPT, Strider and RTL-Repair reuse each other's compiles.
type SimServices struct {
	Backend sim.Backend
	Cache   *sim.Cache
	Memo    *uvm.TraceMemo
}

// Compile builds (or fetches) the Program for src on the bundle's
// backend, routing through the compile cache when one is attached.
func (svc SimServices) Compile(src, top string) (*sim.Program, error) {
	if svc.Cache != nil {
		return svc.Cache.Compile(src, top, svc.Backend)
	}
	return sim.CompileSource(src, top, svc.Backend)
}

// WeakBench builds the small directed vector set that MEIC-style methods
// test against: conventional corner patterns, no constrained-random
// exploration. Its weakness (by design) is what produces the HR−FR gap.
func WeakBench(m *dataset.Module, d *sim.Design) []map[string]uint64 {
	patterns := []func(w int) uint64{
		func(w int) uint64 { return 0 },
		func(w int) uint64 { return maskW(w) },
		func(w int) uint64 { return 0xAAAAAAAAAAAAAAAA & maskW(w) },
		func(w int) uint64 { return 1 },
		func(w int) uint64 { return 0x5555555555555555 & maskW(w) },
		func(w int) uint64 { return maskW(w) >> 1 },
		func(w int) uint64 { return 2 },
		func(w int) uint64 { return 3 },
	}
	var vectors []map[string]uint64
	for _, pat := range patterns {
		in := map[string]uint64{}
		for _, p := range d.Inputs() {
			if p.Name == m.Clock {
				continue
			}
			in[p.Name] = pat(p.Width) & maskW(p.Width)
		}
		if m.HasReset {
			in["rst_n"] = 1
		}
		vectors = append(vectors, in)
	}
	// A handful of fixed pseudo-random vectors (LCG, constant seed) —
	// directed testbenches usually sprinkle a few "random-looking" cases
	// in, but never enough for real coverage.
	state := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 16
	}
	for i := 0; i < 4; i++ {
		in := map[string]uint64{}
		for _, p := range d.Inputs() {
			if p.Name == m.Clock {
				continue
			}
			in[p.Name] = next() & maskW(p.Width)
		}
		if m.HasReset {
			in["rst_n"] = 1
		}
		vectors = append(vectors, in)
	}
	return vectors
}

func maskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// RunOwnBench executes the method's own testbench on source, returning
// pass/fail, the UVM-format log and the transaction count. Elaboration
// failures count as a failing run with the error in the log.
func RunOwnBench(source string, m *dataset.Module, vectors []map[string]uint64, svc SimServices) (bool, string, int) {
	env, err := uvm.NewEnv(uvm.Config{
		Source: source, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: 5,
		Backend: svc.Backend, Cache: svc.Cache, Memo: svc.Memo,
	})
	if err != nil {
		return false, "COMPILE_ERROR: " + err.Error(), 0
	}
	rate := env.Run(&uvm.DirectedSequence{Vectors: vectors})
	return rate == 1.0, env.Log(), len(vectors)
}

// RandomOwnBench is the slightly stronger random bench Strider-style
// tools use during candidate screening.
func RandomOwnBench(source string, m *dataset.Module, n int, seed int64, svc SimServices) (bool, string, int) {
	env, err := uvm.NewEnv(uvm.Config{
		Source: source, Top: m.Top, Clock: m.Clock, RefName: m.Name, Seed: seed,
		Backend: svc.Backend, Cache: svc.Cache, Memo: svc.Memo,
	})
	if err != nil {
		return false, "COMPILE_ERROR: " + err.Error(), 0
	}
	var ports []sim.PortInfo
	for _, p := range env.DUT.Sim.Design().Inputs() {
		if p.Name == m.Clock {
			continue
		}
		ports = append(ports, p)
	}
	reset := ""
	if m.HasReset {
		reset = "rst_n"
	}
	rate := env.Run(&uvm.RandomSequence{Ports: ports, N: n, ResetName: reset})
	return rate == 1.0, env.Log(), n
}

// elaborateFor returns the design of the golden source (for port shapes)
// — baselines need port widths even when the faulty source does not
// compile. No simulation state is created: the Design hangs off the
// (cached) Program.
func elaborateFor(m *dataset.Module, svc SimServices) (*sim.Design, error) {
	p, err := svc.Compile(m.Source, m.Top)
	if err != nil {
		return nil, fmt.Errorf("baseline: golden source of %s does not elaborate: %w", m.Name, err)
	}
	return p.Design(), nil
}

var defaultCost = metrics.DefaultCostModel()
