package psim

import (
	"fmt"

	"uvllm/internal/formal"
	"uvllm/internal/sim"
)

// Engine drives up to 64 lanes of one compiled design bit-parallel: the
// architectural state (every arena signal, every memory word) is stored
// bit-sliced — word b of a signal holds bit b of all 64 lanes — and one
// Machine sweep of the design's single-cycle circuit advances every lane
// by one full harness cycle. Stimulus rows arrive lane-sliced and are
// transposed on the way in; recorded waveform rows are transposed back on
// the way out, once per port per cycle.
//
// The protocol is exactly the harness cycle contract (sim.Batch's): apply
// inputs, settle, pulse the clock, record a waveform row with the clock
// low. Lanes are independent simulations; a nil stimulus row masks a lane
// out of a cycle (it neither advances nor records), which is also how
// callers retire short lanes mid-run. On the supported subset
// (formal.NewCircuit succeeds) lanes cannot error: every construct the
// circuit models evaluates totally.
type Engine struct {
	c     *formal.Circuit
	m     *Machine
	prog  *sim.Program
	d     *sim.Design
	clock string
	lanes int

	state [][]uint64   // per signal: vecW(width) bit-sliced words
	mems  [][][]uint64 // per memory signal: depth x width bit-sliced words

	record bool
	waves  []*sim.Waveform
	recIdx []int // arena index per recorded name, Waveform Names() order

	act01 [][]uint64 // nil when activity tracking is off
	act10 [][]uint64

	cycle int

	stim     [][]uint64 // scratch: per free input, width stimulus words
	applyM   []uint64   // scratch: per free input, lanes applying this cycle
	inNames  map[string]int
	laneRows [][]uint64 // scratch: per lane, one row in waveform name order
}

// NewEngine builds a bit-parallel engine for 1..64 lanes of p under the
// given clock name (taken literally; "" selects the combinational
// protocol). It returns formal.ErrUnsupported-wrapped errors for designs
// outside the bit-blastable subset — the caller's cue to fall back to
// sim.Batch.
func NewEngine(p *sim.Program, lanes int, clock string) (*Engine, error) {
	if lanes < 1 || lanes > 64 {
		return nil, fmt.Errorf("psim: engine needs 1..64 lanes, got %d", lanes)
	}
	c, err := formal.NewCircuit(p, clock, formal.Options{})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		c: c, m: NewMachine(c.G), prog: p, d: p.Design(),
		clock: clock, lanes: lanes, record: true,
		inNames: map[string]int{},
	}
	for i, pt := range c.Free {
		e.inNames[pt.Name] = i
		e.stim = append(e.stim, make([]uint64, len(c.In[i])))
	}
	e.applyM = make([]uint64, len(c.Free))

	e.state = make([][]uint64, len(c.Sigs))
	e.mems = make([][][]uint64, len(c.Sigs))
	for i, sv := range c.Sigs {
		e.state[i] = make([]uint64, len(c.State[i]))
		if sv.IsMem {
			e.mems[i] = make([][]uint64, sv.Depth)
			for dw := 0; dw < sv.Depth; dw++ {
				e.mems[i][dw] = make([]uint64, len(c.StateMem[i][dw]))
			}
		}
	}
	inst, err := p.NewInstance()
	if err != nil {
		return nil, err
	}
	e.Broadcast(inst)

	var names []string
	for _, pt := range e.d.Inputs() {
		names = append(names, pt.Name)
	}
	for _, pt := range e.d.Outputs() {
		names = append(names, pt.Name)
	}
	for k := 0; k < lanes; k++ {
		w := sim.NewWaveform(names)
		e.waves = append(e.waves, w)
		if e.recIdx == nil {
			for _, rn := range w.Names() {
				idx := -1
				if i, ok := e.d.SignalIndex(rn); ok {
					idx = i
				}
				e.recIdx = append(e.recIdx, idx)
			}
		}
	}
	e.laneRows = make([][]uint64, lanes)
	for k := range e.laneRows {
		e.laneRows[k] = make([]uint64, len(e.recIdx))
	}
	return e, nil
}

// Lanes returns the lane count.
func (e *Engine) Lanes() int { return e.lanes }

// Ops returns the compiled per-sweep gate count (a size diagnostic).
func (e *Engine) Ops() int { return e.m.Ops() }

// CycleCount returns the number of cycles driven so far.
func (e *Engine) CycleCount() int { return e.cycle }

// Ports returns the row stimulus layout: the non-clock inputs in
// declaration order, identical to sim.Batch.Ports.
func (e *Engine) Ports() []sim.PortInfo { return append([]sim.PortInfo(nil), e.c.Free...) }

// Wave returns lane k's recorded waveform (same names and layout as a
// standalone Harness waveform).
func (e *Engine) Wave(k int) *sim.Waveform { return e.waves[k] }

// SetRecord switches waveform recording on or off (on by default).
// Scoring-only consumers (the directed-stimulus BitLanes rounds) switch
// it off so speculative cycles do not grow 64 waveforms.
func (e *Engine) SetRecord(on bool) { e.record = on }

// Broadcast re-initializes every lane's state from one concrete instance
// arena: all 64 lanes become exact copies of inst (signals and memories).
// Waveforms and the cycle counter are not touched. A freshly constructed
// engine is broadcast from a fresh Instance, matching sim.NewBatch.
func (e *Engine) Broadcast(inst *sim.Instance) {
	for i, sv := range e.c.Sigs {
		spread(e.state[i], inst.Get(sv.Name))
		if sv.IsMem {
			for dw := 0; dw < sv.Depth; dw++ {
				spread(e.mems[i][dw], inst.GetMem(sv.Name, dw))
			}
		}
	}
}

// spread broadcasts one concrete value across all 64 lanes of a
// bit-sliced word vector.
func spread(dst []uint64, v uint64) {
	for b := range dst {
		dst[b] = -(v >> uint(b) & 1)
	}
}

// Cycle drives one cycle on every unmasked lane: rows[k] holds lane k's
// stimulus aligned with Ports(). A nil rows[k] masks lane k out of this
// cycle entirely — it neither advances nor records — mirroring
// sim.Batch.Cycle.
func (e *Engine) Cycle(rows [][]uint64) error {
	if len(rows) != e.lanes {
		return fmt.Errorf("psim: cycle: %d rows for %d lanes", len(rows), e.lanes)
	}
	var active uint64
	for k, row := range rows {
		if row == nil {
			continue
		}
		if len(row) != len(e.c.Free) {
			return fmt.Errorf("psim: cycle: lane %d row has %d values, want %d", k, len(row), len(e.c.Free))
		}
		active |= 1 << uint(k)
	}
	for i := range e.c.Free {
		e.applyM[i] = active
		var col [64]uint64
		for k, row := range rows {
			if row != nil {
				col[k] = row[i]
			}
		}
		packStim(&col, e.stim[i], e.lanes)
	}
	e.cycleWords(active, false)
	e.cycle++
	return nil
}

// packStim converts one port's lane-sliced column into bit-sliced
// stimulus words. Wide ports use the full 64x64 transpose; narrow ports
// (the common case: resets, enables, byte-wide data) gather their few
// bit rows directly, which beats paying the transpose's fixed cost for
// 64 rows when only a handful are live.
func packStim(col *[64]uint64, dst []uint64, lanes int) {
	if len(dst) >= 16 {
		Transpose64(col)
		copy(dst, col[:len(dst)])
		return
	}
	for b := range dst {
		dst[b] = 0
	}
	for k := 0; k < lanes; k++ {
		v := col[k]
		if v == 0 {
			continue
		}
		for b := range dst {
			dst[b] |= (v >> uint(b) & 1) << uint(k)
		}
	}
}

// CycleMaps drives one cycle with per-lane map stimulus under the
// standalone Harness.Cycle application semantics: inputs present in a
// lane's map are applied, absent inputs hold their values, a nil map
// masks the lane out. Keys must name non-clock design inputs (the clock
// key is ignored, as in the harness); other keys are an error — the
// bit-parallel engine cannot honor the harness's internal-signal pokes.
func (e *Engine) CycleMaps(ins []map[string]uint64) error {
	if len(ins) != e.lanes {
		return fmt.Errorf("psim: cycle: %d stimulus maps for %d lanes", len(ins), e.lanes)
	}
	var active uint64
	for i := range e.c.Free {
		e.applyM[i] = 0
	}
	cols := make([][64]uint64, len(e.c.Free))
	for k, in := range ins {
		if in == nil {
			continue
		}
		active |= 1 << uint(k)
		for name, v := range in {
			i, ok := e.inNames[name]
			if !ok {
				if name == e.clock && e.clock != "" {
					continue
				}
				return fmt.Errorf("psim: cycle: lane %d stimulus names %q, not a free input", k, name)
			}
			e.applyM[i] |= 1 << uint(k)
			cols[i][k] = v
		}
	}
	for i := range e.c.Free {
		packStim(&cols[i], e.stim[i], e.lanes)
	}
	e.cycleWords(active, false)
	e.cycle++
	return nil
}

// ApplyReset drives the conventional reset sequence on every lane —
// assert for cycles clock edges (recorded, other inputs holding), then
// deassert and settle without a waveform row — mirroring
// Harness.ApplyReset and sim.Batch.ApplyReset. Designs without a
// recognized reset input are untouched.
func (e *Engine) ApplyReset(cycles int) error {
	name, activeLow := sim.FindReset(e.d)
	if name == "" {
		return nil
	}
	assert, deassert := uint64(1), uint64(0)
	if activeLow {
		assert, deassert = 0, 1
	}
	in := map[string]uint64{name: assert}
	ins := make([]map[string]uint64, e.lanes)
	for k := range ins {
		ins[k] = in
	}
	for i := 0; i < cycles; i++ {
		if err := e.CycleMaps(ins); err != nil {
			return err
		}
	}
	// Deassert + settle: inputs applied, combinational logic settled, no
	// clock pulse, no waveform row — the harness's Set+Settle instant.
	i, ok := e.inNames[name]
	if !ok {
		return fmt.Errorf("psim: reset input %q is not free", name)
	}
	for j := range e.c.Free {
		e.applyM[j] = 0
	}
	var col [64]uint64
	for k := 0; k < e.lanes; k++ {
		col[k] = deassert
	}
	packStim(&col, e.stim[i], e.lanes)
	e.applyM[i] = allLanes(e.lanes)
	e.cycleWords(allLanes(e.lanes), true)
	return nil
}

// allLanes is the active mask covering lanes 0..n-1.
func allLanes(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// cycleWords is the bit-parallel hot path: load the previous state and
// the (stimulus-or-hold) input words into the machine's variables, sweep
// the circuit once, commit the root words back into the lane-sliced state
// under the active mask, and append waveform rows. settleOnly commits the
// circuit's settle roots (input apply + clock-low settle) and never
// records — the reset-deassert instant.
func (e *Engine) cycleWords(active uint64, settleOnly bool) {
	c, m := e.c, e.m
	for i := range c.Sigs {
		sv := c.State[i]
		st := e.state[i]
		for b := range sv {
			m.SetVar(sv[b], st[b])
		}
		if mem := c.StateMem[i]; mem != nil {
			for dw := range mem {
				mw := e.mems[i][dw]
				for b := range mem[dw] {
					m.SetVar(mem[dw][b], mw[b])
				}
			}
		}
	}
	for i := range c.Free {
		held := e.state[c.FreeIdx[i]]
		apply := e.applyM[i]
		inv := c.In[i]
		stim := e.stim[i]
		for b := range inv {
			m.SetVar(inv[b], stim[b]&apply|held[b]&^apply)
		}
	}
	m.Sweep()
	roots, memRoots := c.Next, c.NextMem
	if settleOnly {
		roots, memRoots = c.Settle, c.SettleMem
	}
	for i := range c.Sigs {
		rv := roots[i]
		st := e.state[i]
		if e.act01 != nil && !settleOnly {
			a01, a10 := e.act01[i], e.act10[i]
			for b := range rv {
				old := st[b]
				nw := m.Word(rv[b])&active | old&^active
				a01[b] |= ^old & nw & active
				a10[b] |= old & ^nw & active
				st[b] = nw
			}
		} else {
			for b := range rv {
				st[b] = m.Word(rv[b])&active | st[b]&^active
			}
		}
		if mem := memRoots[i]; mem != nil {
			for dw := range mem {
				mw := e.mems[i][dw]
				for b := range mem[dw] {
					mw[b] = m.Word(mem[dw][b])&active | mw[b]&^active
				}
			}
		}
	}
	if settleOnly || !e.record {
		return
	}
	for ri, idx := range e.recIdx {
		if idx < 0 {
			for k := 0; k < e.lanes; k++ {
				e.laneRows[k][ri] = 0
			}
			continue
		}
		st := e.state[idx]
		if len(st) >= 16 {
			var col [64]uint64
			copy(col[:], st)
			Transpose64(&col)
			for k := 0; k < e.lanes; k++ {
				e.laneRows[k][ri] = col[k]
			}
			continue
		}
		// Narrow signals: gather the few live bit rows per lane instead of
		// paying the transpose's fixed 64-row cost.
		for k := 0; k < e.lanes; k++ {
			e.laneRows[k][ri] = lane(st, k)
		}
	}
	for k := 0; k < e.lanes; k++ {
		if active>>uint(k)&1 == 1 {
			e.waves[k].RecordRow(e.laneRows[k])
		}
	}
}

// lane extracts lane k's value from a bit-sliced word vector.
func lane(words []uint64, k int) uint64 {
	var v uint64
	for b, w := range words {
		v |= (w >> uint(k) & 1) << uint(b)
	}
	return v
}

// Outputs samples lane k's top-level outputs without advancing time.
func (e *Engine) Outputs(k int) map[string]uint64 {
	outs := map[string]uint64{}
	for _, pt := range e.d.Outputs() {
		if idx, ok := e.d.SignalIndex(pt.Name); ok {
			outs[pt.Name] = lane(e.state[idx], k)
		}
	}
	return outs
}

// Get reads lane k's current value of a signal by name (0 when unknown),
// mirroring Instance.Get.
func (e *Engine) Get(k int, name string) uint64 {
	idx, ok := e.d.SignalIndex(name)
	if !ok {
		return 0
	}
	return lane(e.state[idx], k)
}

// GetMem reads lane k's current value of one memory word (0 when unknown
// or out of range), mirroring Instance.GetMem.
func (e *Engine) GetMem(k int, name string, word int) uint64 {
	idx, ok := e.d.SignalIndex(name)
	if !ok || e.mems[idx] == nil || word < 0 || word >= len(e.mems[idx]) {
		return 0
	}
	return lane(e.mems[idx][word], k)
}

// StartActivity clears and enables the per-signal toggle accumulators:
// from now on every committed cycle ORs each lane's 0->1 and 1->0 bit
// transitions into the activity words. The directed-stimulus scorer uses
// these as a cheap novelty proxy for speculative candidate lanes.
func (e *Engine) StartActivity() {
	e.act01 = make([][]uint64, len(e.state))
	e.act10 = make([][]uint64, len(e.state))
	for i := range e.state {
		e.act01[i] = make([]uint64, len(e.state[i]))
		e.act10[i] = make([]uint64, len(e.state[i]))
	}
}

// Activity returns the accumulated toggle words of one signal (arena
// index): t01[b] bit k set means lane k saw bit b rise since
// StartActivity, t10 likewise for falls. Nil before StartActivity.
func (e *Engine) Activity(sig int) (t01, t10 []uint64) {
	if e.act01 == nil {
		return nil, nil
	}
	return e.act01[sig], e.act10[sig]
}
