// Package exp is the evaluation harness: it runs UVLLM and every baseline
// over the 331-instance error benchmark and regenerates each figure and
// table of the paper's evaluation section (Figs. 5–7, Tables II–III).
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"uvllm/internal/baseline"
	"uvllm/internal/core"
	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/llm"
	"uvllm/internal/sim"
)

// Record is the full evaluation of one benchmark instance.
type Record struct {
	Fault *faultgen.Fault

	UVLLM    core.Result
	UVLLMFix bool // expert-validated (FR numerator)

	MEIC    baseline.Outcome
	MEICFix bool

	Raw    baseline.Outcome
	RawFix bool

	// Template tools run on functional instances only (they cannot start
	// from syntax-broken code); nil otherwise.
	Strider      *baseline.Outcome
	StriderFix   bool
	RTLRepair    *baseline.Outcome
	RTLRepairFix bool
}

// Config selects what to run.
type Config struct {
	Seed            int64
	Mode            llm.GenMode
	Profile         *llm.Profile // nil = DefaultProfile
	SkipBaselines   bool
	DisableRollback bool
	SLThreshold     int               // 0 = default
	Instances       []*faultgen.Fault // nil = full benchmark
	Workers         int               // 0 = NumCPU
	Backend         sim.Backend       // simulation engine (zero value: compiled)
}

func oracleFor(f *faultgen.Fault, prof llm.Profile, seed int64) *llm.Oracle {
	m := f.Meta()
	return llm.NewOracle(llm.Knowledge{
		FaultID: f.ID, Golden: f.Golden, Class: string(f.Class),
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, prof, seed)
}

// Run evaluates all configured instances, in parallel, deterministically.
func Run(cfg Config) []*Record {
	instances := cfg.Instances
	if instances == nil {
		instances = faultgen.Benchmark()
	}
	prof := llm.DefaultProfile()
	if cfg.Profile != nil {
		prof = *cfg.Profile
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	recs := make([]*Record, len(instances))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				recs[i] = runOne(instances[i], cfg, prof)
			}
		}()
	}
	for i := range instances {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return recs
}

func runOne(f *faultgen.Fault, cfg Config, prof llm.Profile) *Record {
	m := f.Meta()
	rec := &Record{Fault: f}

	// UVLLM.
	rec.UVLLM = core.Verify(core.Input{
		Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name,
		Client: oracleFor(f, prof, cfg.Seed),
		Opts: core.Options{
			Seed: cfg.Seed, Mode: cfg.Mode,
			DisableRollback: cfg.DisableRollback,
			SLThreshold:     cfg.SLThreshold,
			Backend:         cfg.Backend,
		},
	})
	rec.UVLLMFix = rec.UVLLM.Success && ExpertPass(rec.UVLLM.Final, m, cfg.Backend)

	if cfg.SkipBaselines {
		return rec
	}

	meic := baseline.NewMEIC(oracleFor(f, prof, cfg.Seed))
	meic.Backend = cfg.Backend
	rec.MEIC = meic.Repair(f)
	rec.MEICFix = rec.MEIC.Hit && ExpertPass(rec.MEIC.Final, m, cfg.Backend)

	raw := baseline.NewRawLLM(oracleFor(f, prof, cfg.Seed))
	raw.Backend = cfg.Backend
	rec.Raw = raw.Repair(f)
	rec.RawFix = rec.Raw.Hit && ExpertPass(rec.Raw.Final, m, cfg.Backend)

	if !f.Class.IsSyntax() {
		strider := baseline.NewStrider()
		strider.Backend = cfg.Backend
		so := strider.Repair(f)
		rec.Strider = &so
		rec.StriderFix = so.Hit && ExpertPass(so.Final, m, cfg.Backend)
		rtlr := baseline.NewRTLRepair()
		rtlr.Backend = cfg.Backend
		ro := rtlr.Repair(f)
		rec.RTLRepair = &ro
		rec.RTLRepairFix = ro.Hit && ExpertPass(ro.Final, m, cfg.Backend)
	}
	return rec
}

var (
	fullOnce    sync.Once
	fullRecs    []*Record
	fullBackend sim.Backend
)

// RecordsBackend selects the simulation backend for the whole cached
// report path — Records, CompleteModeRecords, the ablation runs and the
// pass@k study. Set it before the first of those calls (the experiments
// command does, via its -backend flag); the default is the compiled fast
// path.
var RecordsBackend sim.Backend

// Records returns the cached full-benchmark evaluation at the default
// configuration (seed 1, pair mode, all baselines). The first call locks
// in RecordsBackend; changing it afterwards is a programming error (the
// cache would silently report figures from the wrong engine), so it
// panics rather than mislead.
func Records() []*Record {
	fullOnce.Do(func() {
		fullBackend = RecordsBackend
		fullRecs = Run(Config{Seed: 1, Backend: fullBackend})
	})
	if RecordsBackend != fullBackend {
		panic(fmt.Sprintf("exp: RecordsBackend changed to %v after Records was cached on %v", RecordsBackend, fullBackend))
	}
	return fullRecs
}

// SyntaxRecords filters the cached records to syntax-class instances.
func SyntaxRecords() []*Record {
	var out []*Record
	for _, r := range Records() {
		if r.Fault.Class.IsSyntax() {
			out = append(out, r)
		}
	}
	return out
}

// FunctionalRecords filters the cached records to functional instances.
func FunctionalRecords() []*Record {
	var out []*Record
	for _, r := range Records() {
		if !r.Fault.Class.IsSyntax() {
			out = append(out, r)
		}
	}
	return out
}

// groupOf maps a module to its Table II group.
func groupOf(f *faultgen.Fault) dataset.Category { return f.Meta().Category }
