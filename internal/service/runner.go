package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"uvllm/internal/obs"
)

// Status is a job's lifecycle state. Terminal states are StatusDone,
// StatusFailed, StatusCancelled and StatusDrained.
type Status string

// Job lifecycle states.
const (
	// StatusQueued means the job is waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning means a worker is executing the job.
	StatusRunning Status = "running"
	// StatusDone means the job finished with a passing verdict.
	StatusDone Status = "done"
	// StatusFailed means the job finished with a failing verdict or
	// could not run.
	StatusFailed Status = "failed"
	// StatusCancelled means the client cancelled the job: a queued job
	// never ran, a running job stopped at the next iteration boundary.
	StatusCancelled Status = "cancelled"
	// StatusDrained means the job was still queued when the runner
	// drained; it never ran.
	StatusDrained Status = "drained"
)

// Terminal reports whether the status is a terminal state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled || s == StatusDrained
}

// Event is one progress record on a job's stream: the queue transitions,
// core.Verify's per-iteration verdicts, the formal outcome and the
// terminal state. Seq is assigned per job, densely from 0, so a stream
// consumer can resume from any offset.
type Event struct {
	// Seq is the dense per-job sequence number.
	Seq int `json:"seq"`
	// Kind discriminates the event payload.
	Kind string `json:"kind"`
	// Iteration is the repair iteration for iteration events (0 =
	// pre-processing).
	Iteration int `json:"iteration,omitempty"`
	// Stage is the active pipeline segment.
	Stage string `json:"stage,omitempty"`
	// Score is the scoreboard pass rate of this iteration (0..1).
	Score float64 `json:"score,omitempty"`
	// Best is the best pass rate seen so far.
	Best float64 `json:"best,omitempty"`
	// Coverage is the port-level coverage percent of this iteration.
	Coverage float64 `json:"coverage,omitempty"`
	// StructCoverage is the structural coverage percent of this
	// iteration (when the cover knob is on).
	StructCoverage float64 `json:"struct_coverage,omitempty"`
	// Rollback marks an iteration whose candidate was rejected by the
	// score register.
	Rollback bool `json:"rollback,omitempty"`
	// Formal is the proof outcome on formal events.
	Formal string `json:"formal,omitempty"`
	// Status is the job status on terminal and transition events.
	Status Status `json:"status,omitempty"`
	// Message is free-form human-readable detail.
	Message string `json:"message,omitempty"`
	// Span is the finished trace span on span events (jobs submitted
	// with the trace option stream every span as it closes).
	Span *obs.SpanInfo `json:"span,omitempty"`
}

// Event kinds.
const (
	// EventQueued is emitted at submission.
	EventQueued = "queued"
	// EventStarted is emitted when a worker picks the job up.
	EventStarted = "started"
	// EventIteration carries one core.Progress record.
	EventIteration = "iteration"
	// EventFormal carries the bounded-proof outcome.
	EventFormal = "formal"
	// EventSpan carries one finished trace span (trace-enabled jobs).
	EventSpan = "span"
	// EventTerminal closes the stream with the final status.
	EventTerminal = "terminal"
)

// Job is one submitted verification job and its event history. All
// methods are safe for concurrent use.
type Job struct {
	// ID is the runner-assigned job identifier.
	ID string
	// Spec is the submitted job spec (post default-merging).
	Spec JobSpec

	mu       sync.Mutex
	status   Status
	events   []Event
	notify   chan struct{} // closed and replaced on every append
	result   *Result
	queuedAt time.Time
	doneAt   time.Time // terminal-transition instant; zero while live
	ranFor   time.Duration
	waited   time.Duration

	ctx    context.Context // cancelled by Runner.Cancel; threaded into Execute
	cancel context.CancelFunc
}

func newJob(id string, spec JobSpec, now time.Time) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID: id, Spec: spec, status: StatusQueued, notify: make(chan struct{}),
		queuedAt: now, ctx: ctx, cancel: cancel,
	}
	j.append(Event{Kind: EventQueued, Status: StatusQueued})
	return j
}

// append records one event, stamping Seq and waking stream readers.
func (j *Job) append(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the terminal result, ok=false while the job is live.
func (j *Job) Result() (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return Result{}, false
	}
	return *j.result, true
}

// EventsSince returns a copy of the events from seq onward, plus a
// channel that is closed when more events arrive and whether the job has
// reached a terminal state. The triple lets a streamer loop without
// missing or duplicating events.
func (j *Job) EventsSince(seq int) (evs []Event, more <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < len(j.events) {
		evs = append(evs, j.events[seq:]...)
	}
	return evs, j.notify, j.status.Terminal()
}

// WaitTerminal blocks until the job reaches a terminal state or the
// context is cancelled, returning the final status.
func (j *Job) WaitTerminal(ctx context.Context) (Status, error) {
	seq := 0
	for {
		evs, more, terminal := j.EventsSince(seq)
		seq += len(evs)
		if terminal {
			return j.Status(), nil
		}
		select {
		case <-more:
		case <-ctx.Done():
			return j.Status(), ctx.Err()
		}
	}
}

// setStatus transitions the lifecycle state; it refuses to leave a
// terminal state (a job cancelled while queued stays cancelled even if
// a worker pops it concurrently) and reports whether the transition
// happened.
func (j *Job) setStatus(s Status) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return false
	}
	j.status = s
	return true
}

// finish moves the job to a terminal state at the given instant and
// emits the closing event. It is idempotent: once terminal, later
// finish calls (a cancel racing a drain, a worker finishing a job
// cancelled while queued) are no-ops, and it reports whether this call
// performed the transition.
func (j *Job) finish(s Status, res *Result, msg string, at time.Time) bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.status = s
	j.result = res
	j.doneAt = at
	j.mu.Unlock()
	j.append(Event{Kind: EventTerminal, Status: s, Message: msg})
	return true
}

// cancelIfQueued atomically finishes the job in the cancelled state if
// no worker has picked it up yet, reporting whether it did. A running
// job is left alone: its cancelled context stops Execute at the next
// iteration boundary and the worker lands the terminal transition (with
// the partial result).
func (j *Job) cancelIfQueued(at time.Time) bool {
	j.mu.Lock()
	if j.status != StatusQueued {
		j.mu.Unlock()
		return false
	}
	j.status = StatusCancelled
	j.doneAt = at
	j.mu.Unlock()
	j.append(Event{Kind: EventTerminal, Status: StatusCancelled, Message: "cancelled by client before the job ran"})
	return true
}

// doneSince returns the terminal instant, ok=false while the job is live.
func (j *Job) doneSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneAt, j.status.Terminal() && !j.doneAt.IsZero()
}

// Submission and drain errors.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity; the HTTP layer maps it to 429 with Retry-After.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining is returned by Submit once Drain has begun; the HTTP
	// layer maps it to 503.
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// RunnerConfig sizes a Runner.
type RunnerConfig struct {
	// Workers is the worker pool size (0 = NumCPU).
	Workers int
	// QueueLimit bounds the total queued (not yet running) jobs across
	// all tenants (0 = DefaultQueueLimit).
	QueueLimit int
	// Services is the simulation state jobs run against; the zero value
	// resolves to DefaultServices.
	Services Services
	// Defaults are server-level option defaults merged into every
	// submitted spec (zero-valued knobs inherit, booleans or-combine).
	Defaults Options
	// ResultTTL bounds how long a terminal job (and its result and event
	// history) stays addressable after finishing; expired jobs are
	// garbage-collected opportunistically on submissions and lookups, so
	// a lookup past the TTL reports not-found (HTTP 404). 0 keeps
	// terminal jobs forever — the pre-TTL behavior.
	ResultTTL time.Duration
	// SlowSpan, when > 0, samples slow trace spans: every job is traced
	// and each span lasting at least this long is reported through
	// OnSlowSpan. 0 traces only jobs that opt in with Options.Trace.
	SlowSpan time.Duration
	// OnSlowSpan receives the sampled slow spans (nil discards them);
	// cmd/uvllmd points it at the process log.
	OnSlowSpan func(jobID string, sp obs.SpanInfo)
}

// DefaultQueueLimit bounds the queue when RunnerConfig.QueueLimit is 0.
const DefaultQueueLimit = 256

// Runner is the bounded worker pool over core.Verify behind the server:
// submissions enter per-tenant FIFO queues scheduled round-robin (one
// tenant flooding the queue cannot starve another), a fixed worker pool
// executes jobs through the shared Execute path, and Drain stops intake,
// fails over queued jobs to the drained state and waits for in-flight
// jobs to finish.
type Runner struct {
	cfg  RunnerConfig
	svc  Services
	exec func(context.Context, JobSpec, Services, func(Event)) Result // test seam; ExecuteCtx by default
	now  func() time.Time                                             // test seam; time.Now by default

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]*Job // per-tenant FIFO
	ring     []string          // round-robin tenant order
	next     int               // ring cursor
	queued   int
	running  int
	draining bool
	seq      int
	jobs     map[string]*Job
	wg       sync.WaitGroup

	stageWait     *obs.Histogram // queue_wait stage latencies
	stageRun      *obs.Histogram // run stage latencies
	jobsTotal     *obs.Counter
	jobsCancelled *obs.Counter
}

// stageBuckets bounds the stage/endpoint latency histograms: 1 ms to
// ~65 s, doubling.
var stageBuckets = obs.ExpBuckets(0.001, 2, 17)

// NewRunner starts the worker pool and returns the runner.
func NewRunner(cfg RunnerConfig) *Runner {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	svc := cfg.Services
	if svc.Cache == nil || svc.Memo == nil {
		def := DefaultServices()
		if svc.Cache == nil {
			svc.Cache = def.Cache
		}
		if svc.Memo == nil {
			svc.Memo = def.Memo
		}
	}
	if svc.Obs == nil {
		// The runner always observes: the registry feeds /v1/metrics and
		// /metrics. Callers share a process-wide registry by setting
		// Services.Obs.
		svc.Obs = obs.NewRegistry()
	}
	reg := svc.Obs
	r := &Runner{
		cfg: cfg, svc: svc, exec: ExecuteCtx, now: time.Now,
		queues:        map[string][]*Job{},
		jobs:          map[string]*Job{},
		stageWait:     reg.Histogram("stage_seconds", "job stage latency in seconds", stageBuckets, obs.L("stage", "queue_wait")),
		stageRun:      reg.Histogram("stage_seconds", "job stage latency in seconds", stageBuckets, obs.L("stage", "run")),
		jobsTotal:     reg.Counter("jobs_total", "jobs accepted by the runner"),
		jobsCancelled: reg.Counter("jobs_cancelled_total", "jobs cancelled by the client"),
	}
	r.registerGauges(reg)
	r.cond = sync.NewCond(&r.mu)
	for w := 0; w < cfg.Workers; w++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// registerGauges wires the runner's queue/worker state and the shared
// caches' counters into the registry as snapshot-time gauge functions —
// the registry never duplicates state the subsystems already keep
// behind their own locks.
func (r *Runner) registerGauges(reg *obs.Registry) {
	reg.Gauge("workers", "worker pool size").Set(float64(r.cfg.Workers))
	reg.GaugeFunc("queue_depth", "queued (not running) jobs", func() float64 { return float64(r.QueueDepth()) })
	reg.GaugeFunc("jobs_running", "in-flight jobs", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(r.running)
	})
	cache, memo := r.svc.Cache, r.svc.Memo
	reg.GaugeFunc("cache_hits", "cache hits", func() float64 { return float64(cache.Stats().Hits) }, obs.L("cache", "compile"))
	reg.GaugeFunc("cache_misses", "cache misses", func() float64 { return float64(cache.Stats().Misses) }, obs.L("cache", "compile"))
	reg.GaugeFunc("cache_hits", "cache hits", func() float64 { return float64(cache.Stats().Disk.Hits) }, obs.L("cache", "disk"))
	reg.GaugeFunc("cache_misses", "cache misses", func() float64 { return float64(cache.Stats().Disk.Misses) }, obs.L("cache", "disk"))
	reg.GaugeFunc("cache_writes", "disk cache entries written", func() float64 { return float64(cache.Stats().Disk.Writes) }, obs.L("cache", "disk"))
	reg.GaugeFunc("cache_evictions", "disk cache evictions", func() float64 { return float64(cache.Stats().Disk.Evictions) }, obs.L("cache", "disk"))
	reg.GaugeFunc("cache_hits", "cache hits", func() float64 { return float64(memo.Stats().Hits) }, obs.L("cache", "trace_memo"))
	reg.GaugeFunc("cache_misses", "cache misses", func() float64 { return float64(memo.Stats().Misses) }, obs.L("cache", "trace_memo"))
}

// Workers returns the worker pool size.
func (r *Runner) Workers() int { return r.cfg.Workers }

// Services returns the simulation state jobs run against.
func (r *Runner) Services() Services { return r.svc }

// Submit validates, defaults and enqueues one job. It returns
// ErrDraining after Drain has begun and ErrQueueFull when the bounded
// queue is at capacity; both leave no trace in the job table.
func (r *Runner) Submit(spec JobSpec) (*Job, error) {
	spec.Options = spec.Options.merge(r.cfg.Defaults)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gcLocked()
	if r.draining {
		return nil, ErrDraining
	}
	if r.queued >= r.cfg.QueueLimit {
		return nil, ErrQueueFull
	}
	r.seq++
	j := newJob(fmt.Sprintf("job-%d", r.seq), spec, r.now())
	tenant := spec.Tenant
	if _, ok := r.queues[tenant]; !ok {
		r.ring = append(r.ring, tenant)
	}
	r.queues[tenant] = append(r.queues[tenant], j)
	r.queued++
	r.jobs[j.ID] = j
	r.jobsTotal.Inc()
	r.cond.Signal()
	return j, nil
}

// Cancel requests cancellation of a job by ID. A queued job moves to
// the cancelled terminal state immediately and never runs; a running
// job has its context cancelled, so Execute stops at the next
// iteration (or formal depth) boundary and the worker lands it in the
// cancelled state. Cancelling a terminal job is a no-op. ok is false
// for unknown (or TTL-expired) IDs.
func (r *Runner) Cancel(id string) (j *Job, ok bool) {
	j, ok = r.Job(id)
	if !ok {
		return nil, false
	}
	j.cancel()
	if j.cancelIfQueued(r.now()) {
		// The job was still queued: it is terminal now and the worker that
		// eventually pops it will skip it.
		r.jobsCancelled.Inc()
		r.countTerminal(StatusCancelled)
	}
	return j, true
}

// countTerminal records one terminal transition in the registry.
func (r *Runner) countTerminal(s Status) {
	r.svc.Obs.Counter("jobs_by_status_total", "terminal jobs by status", obs.L("status", string(s))).Inc()
}

// Job looks a job up by ID. Terminal jobs past the configured ResultTTL
// are gone: the lookup reports not-found exactly like an unknown ID.
func (r *Runner) Job(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gcLocked()
	j, ok := r.jobs[id]
	return j, ok
}

// gcLocked removes terminal jobs whose ResultTTL has elapsed. Called with
// mu held; a no-op when no TTL is configured.
func (r *Runner) gcLocked() {
	ttl := r.cfg.ResultTTL
	if ttl <= 0 {
		return
	}
	now := r.now()
	for id, j := range r.jobs {
		if at, ok := j.doneSince(); ok && now.Sub(at) >= ttl {
			delete(r.jobs, id)
		}
	}
}

// QueueDepth returns the number of queued (not running) jobs.
func (r *Runner) QueueDepth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queued
}

// Draining reports whether Drain has begun.
func (r *Runner) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Snapshot returns per-tenant queue depths and job counts by status —
// the runner's contribution to the metrics endpoint.
func (r *Runner) Snapshot() (tenantDepth map[string]int, byStatus map[Status]int, running int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tenantDepth = map[string]int{}
	for t, q := range r.queues {
		if len(q) > 0 {
			tenantDepth[t] = len(q)
		}
	}
	byStatus = map[Status]int{}
	for _, j := range r.jobs {
		byStatus[j.Status()]++
	}
	return tenantDepth, byStatus, r.running
}

// popLocked removes and returns the next job under round-robin tenant
// order, or nil when the queue is empty. Called with mu held.
func (r *Runner) popLocked() *Job {
	for range r.ring {
		if len(r.ring) == 0 {
			return nil
		}
		r.next %= len(r.ring)
		tenant := r.ring[r.next]
		q := r.queues[tenant]
		if len(q) == 0 {
			// Tenant went idle: drop it from the ring (it re-registers on
			// its next submission) without advancing the cursor.
			delete(r.queues, tenant)
			r.ring = append(r.ring[:r.next], r.ring[r.next+1:]...)
			continue
		}
		j := q[0]
		r.queues[tenant] = q[1:]
		r.queued--
		r.next++
		return j
	}
	return nil
}

// worker is one pool goroutine: pop fair-scheduled jobs until drain.
func (r *Runner) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for r.queued == 0 && !r.draining {
			r.cond.Wait()
		}
		if r.queued == 0 && r.draining {
			r.mu.Unlock()
			return
		}
		j := r.popLocked()
		r.running++
		r.mu.Unlock()
		if j != nil {
			r.run(j)
		}
		r.mu.Lock()
		r.running--
		r.mu.Unlock()
	}
}

// run executes one job end to end, recording queue-wait and run-time
// stage samples and tracing the job when the trace knob (or the
// slow-span sampler) is on.
func (r *Runner) run(j *Job) {
	start := r.now()
	wait := start.Sub(j.queuedAt)
	r.stageWait.Observe(wait.Seconds())
	j.mu.Lock()
	j.waited = wait
	j.mu.Unlock()

	if !j.setStatus(StatusRunning) {
		// Cancelled while queued: the job is already terminal, skip it.
		return
	}
	j.append(Event{Kind: EventStarted, Status: StatusRunning})

	ctx := j.ctx
	var root *obs.Span
	if j.Spec.Options.Trace || r.cfg.SlowSpan > 0 {
		tracer := obs.NewTracer(j.ID)
		tracer.SlowSpan = r.cfg.SlowSpan
		if r.cfg.OnSlowSpan != nil {
			tracer.OnSlow = func(sp obs.SpanInfo) { r.cfg.OnSlowSpan(j.ID, sp) }
		}
		if j.Spec.Options.Trace {
			tracer.OnEnd = func(sp obs.SpanInfo) {
				s := sp
				j.append(Event{Kind: EventSpan, Span: &s})
			}
		}
		root = tracer.Start("job")
		ctx = obs.ContextWith(ctx, root)
	}
	res := r.exec(ctx, j.Spec, r.svc, j.append)
	root.End()
	ran := r.now().Sub(start)
	r.stageRun.Observe(ran.Seconds())
	j.mu.Lock()
	j.ranFor = ran
	j.mu.Unlock()

	status, msg := StatusDone, "verification passed"
	switch {
	case res.Cancelled:
		status = StatusCancelled
		msg = "cancelled by client mid-run"
		r.jobsCancelled.Inc()
	case res.Failed():
		status = StatusFailed
		switch {
		case res.Error != "":
			msg = res.Error
		case res.Formal == "refuted":
			msg = "formal refutation: " + res.FormalDetail
		default:
			msg = fmt.Sprintf("verification failed (best pass rate %.2f)", res.PassRate)
		}
	}
	if j.finish(status, &res, msg, r.now()) {
		r.countTerminal(status)
	}
}

// Drain stops intake, terminates every still-queued job with the drained
// status, and waits (bounded by ctx) for in-flight jobs and the worker
// pool to finish. Safe to call more than once.
func (r *Runner) Drain(ctx context.Context) error {
	r.mu.Lock()
	if !r.draining {
		r.draining = true
		for {
			j := r.popLocked()
			if j == nil {
				break
			}
			if j.finish(StatusDrained, nil, "server drained before the job ran", r.now()) {
				r.countTerminal(StatusDrained)
			}
		}
	}
	r.cond.Broadcast()
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StageStats returns the recorded per-stage latency samples (seconds),
// keyed by stage name ("queue_wait", "run"). The samples come from the
// registry histograms' bounded windows, so percentiles reflect recent
// load exactly as the pre-registry sampler did.
func (r *Runner) StageStats() map[string][]float64 {
	out := map[string][]float64{}
	for name, h := range map[string]*obs.Histogram{"queue_wait": r.stageWait, "run": r.stageRun} {
		if xs := h.Samples(); len(xs) > 0 {
			out[name] = xs
		}
	}
	return out
}

// stageCount returns the total observation count of a stage histogram.
func (r *Runner) stageCount(name string) int64 {
	switch name {
	case "queue_wait":
		return int64(r.stageWait.Count())
	case "run":
		return int64(r.stageRun.Count())
	}
	return 0
}
