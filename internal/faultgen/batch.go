package faultgen

// Lane-parallel mutant observation. Classifying a fault means running
// the faulty source under the golden testbench; one stimulus seed can
// miss a fault another catches, and re-running the same compiled mutant
// per seed pays the full per-instance cost each time. ObserveLanes
// compiles the mutant once and drives K seeds as K lanes of one
// sim.Batch — fused sweeps, one schedule decode — scoring each lane
// against the memoized golden trace exactly as the sequential
// environment would.

import (
	"fmt"

	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// ObserveLanes runs the faulty source under the golden UVM stimulus for
// every seed at once, one batch lane per seed, and returns the per-seed
// pass rates. Each lane replays the exact protocol of the sequential
// observe path: a 2-cycle reset phase when the design has a reset, then
// n random vectors (ResetEvery 50) materialized from that lane's seed,
// scored cycle by cycle against the reference model's memoized golden
// trace. A lane whose simulation dies keeps the pass rate accumulated up
// to the failing cycle, like Env.Run.
func ObserveLanes(f *Fault, seeds []int64, n int) ([]float64, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("faultgen: ObserveLanes needs at least one seed")
	}
	m := f.Meta()
	prog, err := sim.CompileSource(f.Source, m.Top, sim.BackendCompiled)
	if err != nil {
		return nil, err
	}
	b, err := sim.NewBatch(prog, len(seeds), m.Clock)
	if err != nil {
		return nil, err
	}
	var ports []sim.PortInfo
	for _, p := range prog.Design().Inputs() {
		if p.Name != m.Clock {
			ports = append(ports, p)
		}
	}
	rstName, _ := sim.FindReset(prog.Design())
	memo := uvm.SharedTraceMemo()
	vectors := make([][]map[string]uint64, len(seeds))
	expected := make([][]map[string]uint64, len(seeds))
	for k, seed := range seeds {
		seq := &uvm.RandomSequence{Ports: ports, N: n, ResetName: rstName, ResetEvery: 50}
		vectors[k] = uvm.Materialize(seq, seed)
		exp, err := memo.Expected(m.Name, rstName != "", vectors[k])
		if err != nil {
			return nil, err
		}
		expected[k] = exp
	}
	if rstName != "" {
		if err := b.ApplyReset(2); err != nil {
			return nil, err
		}
	}
	scores := make([]*uvm.Scoreboard, len(seeds))
	for k := range scores {
		scores[k] = &uvm.Scoreboard{MaxMismatches: 64}
	}
	ins := make([]map[string]uint64, len(seeds))
	for i := 0; i < n; i++ {
		cycle := b.CycleCount()
		for k := range ins {
			ins[k] = nil
			if b.Err(k) == nil && i < len(vectors[k]) {
				ins[k] = vectors[k][i]
			}
		}
		if err := b.CycleMaps(ins); err != nil {
			return nil, err
		}
		for k := range ins {
			if ins[k] == nil || b.Err(k) != nil {
				continue // dead lane: rate frozen where the simulation died
			}
			scores[k].Compare(cycle, expected[k][i], b.Outputs(k))
		}
	}
	rates := make([]float64, len(seeds))
	for k, sb := range scores {
		rates[k] = sb.PassRate()
	}
	return rates, nil
}
