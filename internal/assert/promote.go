package assert

import "fmt"

// Promoted wraps a mined assertion with a bounded-proof certificate: the
// property did not merely hold on the observed trace, it was proved by
// the formal engine (internal/formal) to hold on every post-reset input
// sequence up to Depth cycles. Promotion is the held-on-trace →
// proved-to-depth-k upgrade of the assertion lifecycle; the wrapper
// still checks cycle by cycle inside the UVM monitor (a bounded proof is
// not an unbounded one), but its description carries the certificate.
type Promoted struct {
	Assertion
	Depth int // proved for all stimulus up to this many cycles
}

// Promote attaches a bounded-proof certificate to an assertion.
func Promote(a Assertion, depth int) Promoted {
	return Promoted{Assertion: a, Depth: depth}
}

// Describe implements Assertion, appending the proof certificate to the
// wrapped description.
func (p Promoted) Describe() string {
	return fmt.Sprintf("%s  // proved to depth %d", p.Assertion.Describe(), p.Depth)
}
