package dataset

func init() {
	register(&Module{
		Name: "counter_12bit", Category: Control, Top: "counter_12bit",
		Clock: "clk", HasReset: true, Complexity: 1,
		Spec: `counter_12bit is a 12-bit up counter. On every rising clock
edge with en high, count increments by one, wrapping from 4095 back to 0.
The carry output is high while count equals 4095. rst_n is an active-low
asynchronous reset clearing count.`,
		Source: `module counter_12bit(
    input clk,
    input rst_n,
    input en,
    output reg [11:0] count,
    output carry
);
    assign carry = (count == 12'hFFF) ? 1'b1 : 1'b0;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            count <= 12'd0;
        end else if (en) begin
            count <= count + 12'd1;
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "updown_counter", Category: Control, Top: "updown_counter",
		Clock: "clk", HasReset: true, Complexity: 2,
		Spec: `updown_counter is an 8-bit loadable up/down counter. On a
rising clock edge: if load is high, q takes the value d; otherwise if up
is high q increments, else q decrements, both wrapping modulo 256. rst_n
is an active-low asynchronous reset clearing q.`,
		Source: `module updown_counter(
    input clk,
    input rst_n,
    input load,
    input up,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            q <= 8'd0;
        end else if (load) begin
            q <= d;
        end else if (up) begin
            q <= q + 8'd1;
        end else begin
            q <= q - 8'd1;
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "ring_counter", Category: Control, Top: "ring_counter",
		Clock: "clk", HasReset: true, Complexity: 1,
		Spec: `ring_counter is a 4-bit one-hot ring counter. Reset (active-
low, asynchronous) initializes q to 4'b0001; every rising clock edge
rotates the single hot bit one position toward the MSB, wrapping around.`,
		Source: `module ring_counter(
    input clk,
    input rst_n,
    output reg [3:0] q
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            q <= 4'b0001;
        end else begin
            q <= {q[2:0], q[3]};
        end
    end
endmodule
`,
	})

	register(&Module{
		Name: "seq_detector", Category: Control, Top: "seq_detector",
		Clock: "clk", HasReset: true, Complexity: 4, IsFSM: true,
		Spec: `seq_detector is a Moore finite state machine that detects the
overlapping bit pattern 1011 on the serial input x. The output z goes
high for one cycle, the cycle after the final 1 of the pattern has been
sampled. States: S0 idle, S1 saw "1", S2 saw "10", S3 saw "101",
S4 pattern complete (z = 1). Overlap is honored: from S4, input 1 moves
to S1 and input 0 moves to S2. rst_n is an active-low asynchronous reset
returning the machine to S0.`,
		Source: `module seq_detector(
    input clk,
    input rst_n,
    input x,
    output reg z
);
    localparam S0 = 3'd0;
    localparam S1 = 3'd1;
    localparam S2 = 3'd2;
    localparam S3 = 3'd3;
    localparam S4 = 3'd4;
    reg [2:0] state;
    reg [2:0] next;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            state <= S0;
        end else begin
            state <= next;
        end
    end
    always @(*) begin
        case (state)
            S0: next = x ? S1 : S0;
            S1: next = x ? S1 : S2;
            S2: next = x ? S3 : S0;
            S3: next = x ? S4 : S2;
            S4: next = x ? S1 : S2;
            default: next = S0;
        endcase
    end
    always @(*) begin
        z = (state == S4) ? 1'b1 : 1'b0;
    end
endmodule
`,
	})

	register(&Module{
		Name: "traffic_light", Category: Control, Top: "traffic_light",
		Clock: "clk", HasReset: true, Complexity: 4, IsFSM: true,
		Spec: `traffic_light is a Moore FSM cycling through green (5 cycles),
yellow (2 cycles) and red (4 cycles), then back to green. Exactly one of
the outputs green, yellow, red is high at any time. rst_n is an
active-low asynchronous reset that returns to the start of the green
phase.`,
		Source: `module traffic_light(
    input clk,
    input rst_n,
    output reg red,
    output reg yellow,
    output reg green
);
    localparam S_GREEN = 2'd0;
    localparam S_YELLOW = 2'd1;
    localparam S_RED = 2'd2;
    localparam GREEN_T = 5;
    localparam YELLOW_T = 2;
    localparam RED_T = 4;
    reg [1:0] state;
    reg [3:0] timer;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            state <= S_GREEN;
            timer <= 4'd0;
        end else begin
            case (state)
                S_GREEN: begin
                    if (timer == GREEN_T - 1) begin
                        state <= S_YELLOW;
                        timer <= 4'd0;
                    end else begin
                        timer <= timer + 4'd1;
                    end
                end
                S_YELLOW: begin
                    if (timer == YELLOW_T - 1) begin
                        state <= S_RED;
                        timer <= 4'd0;
                    end else begin
                        timer <= timer + 4'd1;
                    end
                end
                S_RED: begin
                    if (timer == RED_T - 1) begin
                        state <= S_GREEN;
                        timer <= 4'd0;
                    end else begin
                        timer <= timer + 4'd1;
                    end
                end
                default: begin
                    state <= S_GREEN;
                    timer <= 4'd0;
                end
            endcase
        end
    end
    always @(*) begin
        green = (state == S_GREEN) ? 1'b1 : 1'b0;
        yellow = (state == S_YELLOW) ? 1'b1 : 1'b0;
        red = (state == S_RED) ? 1'b1 : 1'b0;
    end
endmodule
`,
	})

	register(&Module{
		Name: "vending_machine", Category: Control, Top: "vending_machine",
		Clock: "clk", HasReset: true, Complexity: 4, IsFSM: true,
		Spec: `vending_machine accepts coins and dispenses an item priced at
20 units. The 2-bit input coin encodes: 0 none, 1 a 5-unit coin, 2 a
10-unit coin, 3 a 25-unit coin, sampled on each rising clock edge. When
the inserted total reaches or exceeds 20, dispense goes high for one
cycle, change outputs the overpayment, and the total resets to zero.
Otherwise dispense and change are zero and the total accumulates. rst_n
is an active-low asynchronous reset clearing everything.`,
		Source: `module vending_machine(
    input clk,
    input rst_n,
    input [1:0] coin,
    output reg dispense,
    output reg [5:0] change
);
    localparam PRICE = 20;
    reg [5:0] total;
    reg [5:0] value;
    always @(*) begin
        case (coin)
            2'd1: value = 6'd5;
            2'd2: value = 6'd10;
            2'd3: value = 6'd25;
            default: value = 6'd0;
        endcase
    end
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            total <= 6'd0;
            dispense <= 1'b0;
            change <= 6'd0;
        end else begin
            if (total + value >= PRICE) begin
                dispense <= 1'b1;
                change <= total + value - PRICE;
                total <= 6'd0;
            end else begin
                dispense <= 1'b0;
                change <= 6'd0;
                total <= total + value;
            end
        end
    end
endmodule
`,
	})
}
