// Package locate is UVLLM's post-processing localization engine
// (Algorithm 2): it parses the UVM log for mismatch timestamps and signals
// (ErrChk), reads the input values at the mismatch time from the recorded
// waveform, and — when mismatch signals alone have not been enough —
// performs a dynamic slice over the design's data-flow graph to extract
// suspicious code lines (ErrInfoFetch).
package locate

import (
	"crypto/sha256"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"uvllm/internal/memo"
	"uvllm/internal/sim"
	"uvllm/internal/verilog"
)

// patMS is the PAT_MS pattern of Algorithm 2: it recognizes scoreboard
// mismatch records in the UVM log.
var patMS = regexp.MustCompile(`UVM_ERROR @ (\d+): \S+ \[SCBD\] mismatch signal=(\w+) expected=0x([0-9a-fA-F]+) actual=0x([0-9a-fA-F]+)`)

// Mismatch is one parsed UVM_ERROR record.
type Mismatch struct {
	Time     int
	Signal   string
	Expected uint64
	Actual   uint64
}

// ErrChk parses the UVM log (Algorithm 2, function ErrChk), returning the
// mismatch timestamps MT, mismatch signals MS (deduplicated, first-seen
// order) and the input values IV at the first mismatch time.
func ErrChk(uvmLog string, wave *sim.Waveform) (mt []int, ms []string, iv map[string]uint64) {
	seenT := map[int]bool{}
	seenS := map[string]bool{}
	for _, m := range patMS.FindAllStringSubmatch(uvmLog, -1) {
		t, _ := strconv.Atoi(m[1])
		if !seenT[t] {
			seenT[t] = true
			mt = append(mt, t)
		}
		if !seenS[m[2]] {
			seenS[m[2]] = true
			ms = append(ms, m[2])
		}
	}
	if len(mt) > 0 && wave != nil {
		iv = wave.ValuesAt(mt[0])
	}
	return mt, ms, iv
}

// DefSite is one assignment to a signal in the data-flow graph.
type DefSite struct {
	Line  int
	Deps  []string // data dependencies (RHS identifiers)
	Conds []string // control dependencies (enclosing condition identifiers)
}

// DFG is a per-signal definition map over all modules of a source file.
type DFG struct {
	Defs map[string][]DefSite
}

// BuildDFG constructs the data-flow graph from parsed source. Signals are
// keyed by unqualified name; in hierarchical sources submodule definitions
// merge into the same graph, which is exactly what the repair prompt needs
// (line numbers into the single source file).
func BuildDFG(f *verilog.SourceFile) *DFG {
	g := &DFG{Defs: map[string][]DefSite{}}
	for _, m := range f.Modules {
		for _, it := range m.Items {
			switch v := it.(type) {
			case *verilog.ContAssign:
				g.addDef(v.LHS, v.RHS, nil, v.Line)
			case *verilog.AlwaysBlock:
				g.walkStmt(v.Body, nil)
			case *verilog.Instance:
				// Port connections couple parent and child signals.
				tgt := f.Module(v.ModName)
				for _, c := range v.Conns {
					if c.Expr == nil || tgt == nil {
						continue
					}
					port := tgt.Port(c.Port)
					if port == nil {
						continue
					}
					portRef := &verilog.Ident{Name: port.Name, Line: c.Line}
					if port.Dir == verilog.DirOutput {
						g.addDef(c.Expr, portRef, nil, c.Line)
					} else {
						g.addDef(portRef, c.Expr, nil, c.Line)
					}
				}
			}
		}
	}
	return g
}

func (g *DFG) addDef(lhs verilog.Expr, rhs verilog.Expr, conds []string, line int) {
	deps := verilog.ExprIdents(rhs)
	for _, name := range verilog.LHSTargets(lhs) {
		g.Defs[name] = append(g.Defs[name], DefSite{
			Line:  line,
			Deps:  deps,
			Conds: append([]string(nil), conds...),
		})
	}
}

func (g *DFG) walkStmt(s verilog.Stmt, conds []string) {
	switch v := s.(type) {
	case *verilog.Block:
		for _, st := range v.Stmts {
			g.walkStmt(st, conds)
		}
	case *verilog.Assign:
		g.addDef(v.LHS, v.RHS, conds, v.Line)
	case *verilog.If:
		sub := append(append([]string(nil), conds...), verilog.ExprIdents(v.Cond)...)
		g.walkStmt(v.Then, sub)
		g.walkStmt(v.Else, sub)
	case *verilog.Case:
		sub := append(append([]string(nil), conds...), verilog.ExprIdents(v.Expr)...)
		for _, it := range v.Items {
			g.walkStmt(it.Body, sub)
		}
	case *verilog.For:
		sub := append(append([]string(nil), conds...), verilog.ExprIdents(v.Cond)...)
		if v.Init != nil {
			g.addDef(v.Init.LHS, v.Init.RHS, conds, v.Init.Line)
		}
		if v.Step != nil {
			g.addDef(v.Step.LHS, v.Step.RHS, sub, v.Step.Line)
		}
		g.walkStmt(v.Body, sub)
	}
}

// Slice computes the backward slice from the given signals: the set of
// source lines whose assignments (directly or transitively) feed them, and
// the set of intermediate signals encountered (Algorithm 2's expansion of
// MS with detected fan-in signals).
func (g *DFG) Slice(signals []string, maxLines int) (lines []int, expanded []string) {
	visited := map[string]bool{}
	lineSet := map[int]bool{}
	queue := append([]string(nil), signals...)
	for len(queue) > 0 {
		sig := queue[0]
		queue = queue[1:]
		if visited[sig] {
			continue
		}
		visited[sig] = true
		for _, def := range g.Defs[sig] {
			lineSet[def.Line] = true
			for _, dep := range append(append([]string(nil), def.Deps...), def.Conds...) {
				if !visited[dep] {
					queue = append(queue, dep)
				}
			}
		}
	}
	for ln := range lineSet {
		lines = append(lines, ln)
	}
	sort.Ints(lines)
	if maxLines > 0 && len(lines) > maxLines {
		lines = lines[:maxLines]
	}
	inMS := map[string]bool{}
	for _, s := range signals {
		inMS[s] = true
	}
	for sig := range visited {
		if !inMS[sig] && len(g.Defs[sig]) > 0 {
			expanded = append(expanded, sig)
		}
	}
	sort.Strings(expanded)
	return lines, expanded
}

// ErrInfo is the stage output handed to the repair agent.
type ErrInfo struct {
	MismatchTimes   []int
	MismatchSignals []string
	InputValues     map[string]uint64
	SuspiciousLines []int
	Expanded        []string
	SL              bool // true when suspicious-line mode is active
}

// dfgMemo content-addresses built data-flow graphs by source hash. The
// repair loop re-slices the same candidate source on every SL-mode
// iteration, and the template baselines localize against the same faulty
// source per mutation batch; a DFG is read-only after construction, so
// one build serves them all. A stored nil marks unparseable source.
var dfgMemo = memo.New[[sha256.Size]byte, *DFG](256)

// DFGFor returns the memoized data-flow graph of src, or nil when the
// source does not parse. The returned graph is shared: read-only.
func DFGFor(src string) *DFG {
	g, _ := dfgMemo.Do(sha256.Sum256([]byte(src)), func() (*DFG, error) {
		f, perrs := verilog.Parse(src)
		if len(perrs) > 0 {
			return nil, nil
		}
		return BuildDFG(f), nil
	})
	return g
}

// ErrInfoFetch implements Algorithm 2's main function: below the iteration
// threshold it returns mismatch-signal information only (MS mode); at or
// above it, it adds the dynamic slice (SL mode).
func ErrInfoFetch(src, uvmLog string, wave *sim.Waveform, iter, threshold int) ErrInfo {
	mt, ms, iv := ErrChk(uvmLog, wave)
	info := ErrInfo{MismatchTimes: mt, MismatchSignals: ms, InputValues: iv}
	if iter < threshold {
		return info
	}
	info.SL = true
	g := DFGFor(src)
	if g == nil {
		return info
	}
	info.SuspiciousLines, info.Expanded = g.Slice(ms, 24)
	return info
}

// Format renders the error information section of the repair prompt.
func (e ErrInfo) Format(src string) string {
	var b strings.Builder
	if len(e.MismatchTimes) > 0 {
		fmt.Fprintf(&b, "mismatch timestamps: %s\n", joinInts(e.MismatchTimes, 8))
	}
	if len(e.MismatchSignals) > 0 {
		fmt.Fprintf(&b, "mismatch signals: %s\n", strings.Join(e.MismatchSignals, ", "))
	}
	if len(e.InputValues) > 0 && len(e.MismatchTimes) > 0 {
		var names []string
		for n := range e.InputValues {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "signal values at t=%d:", e.MismatchTimes[0])
		for _, n := range names {
			fmt.Fprintf(&b, " %s=0x%x", n, e.InputValues[n])
		}
		b.WriteString("\n")
	}
	if e.SL && len(e.SuspiciousLines) > 0 {
		b.WriteString("suspicious lines (dynamic slice of the mismatch signals):\n")
		ls := strings.Split(src, "\n")
		for _, ln := range e.SuspiciousLines {
			if ln-1 >= 0 && ln-1 < len(ls) {
				fmt.Fprintf(&b, "  L%d: %s\n", ln, strings.TrimSpace(ls[ln-1]))
			}
		}
		if len(e.Expanded) > 0 {
			fmt.Fprintf(&b, "additional suspicious signals: %s\n", strings.Join(e.Expanded, ", "))
		}
	}
	if b.Len() == 0 {
		b.WriteString("(no scoreboard mismatches parsed)\n")
	}
	return b.String()
}

func joinInts(xs []int, max int) string {
	var parts []string
	for i, x := range xs {
		if i == max {
			parts = append(parts, "...")
			break
		}
		parts = append(parts, strconv.Itoa(x))
	}
	return strings.Join(parts, ", ")
}
