// Package preproc implements Algorithm 1 of the UVLLM paper: the joint
// LLM–script pre-processing loop. The linter is run repeatedly; syntax
// errors are handed to the LLM agent with the lint log as error
// information, while the focused timing-related warnings (COMBDLY, BLKSEQ,
// incomplete sensitivity, missing async reset edge) are repaired by script
// templates without spending LLM tokens.
package preproc

import (
	"fmt"
	"regexp"
	"strings"

	"uvllm/internal/lint"
	"uvllm/internal/llm"
	"uvllm/internal/repair"
)

// Result is the outcome of pre-processing one DUT.
type Result struct {
	Source        string // pre-processed source
	Clean         bool   // no errors and no focused warnings remain
	Iterations    int    // linter loop iterations executed
	LintRuns      int
	LLMCalls      int
	Changed       bool     // the source was modified
	TemplateFixes []string // descriptions of script-template repairs
	Log           []string
}

// Options configures the loop.
type Options struct {
	MaxIterations int // defaults to 5
	Mode          llm.GenMode
}

// Run executes Algorithm 1 on src. The client repairs syntax errors; the
// templates handle focused warnings. It never returns an error: an
// unrepairable DUT comes back with Clean=false for the caller to count as
// a failure.
func Run(src, spec, moduleName string, client llm.Client, opts Options, usage *llm.Usage) Result {
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 3
	}
	res := Result{Source: src}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		rep := lint.Lint(res.Source)
		res.LintRuns++
		errs := rep.Errors()
		warns := rep.FocusedWarnings()
		if len(errs) == 0 && len(warns) == 0 {
			res.Clean = true
			return res
		}
		if len(errs) > 0 {
			// Errs -> GPT(F, Errs)
			req := llm.BuildRepairRequest(llm.RepairContext{
				ModuleName: moduleName,
				Spec:       spec,
				Source:     res.Source,
				Stage:      llm.StageLint,
				ErrorInfo:  formatDiags(errs),
				Iteration:  iter,
				Mode:       opts.Mode,
			})
			resp, err := client.Complete(req)
			res.LLMCalls++
			if usage != nil {
				usage.Add(resp)
			}
			if err != nil {
				res.Log = append(res.Log, fmt.Sprintf("iter %d: LLM error: %v", iter, err))
				continue
			}
			reply, err := llm.ParseRepairReply(resp.Content)
			if err != nil {
				res.Log = append(res.Log, fmt.Sprintf("iter %d: unparseable reply: %v", iter, err))
				continue
			}
			next, err := repair.ApplyReply(res.Source, reply, opts.Mode)
			if err != nil {
				res.Log = append(res.Log, fmt.Sprintf("iter %d: patch failed: %v", iter, err))
				continue
			}
			if next != res.Source {
				res.Source = next
				res.Changed = true
				res.Log = append(res.Log, fmt.Sprintf("iter %d: LLM repaired %d lint error(s)", iter, len(errs)))
			}
			continue
		}
		// Warns -> Search(Warns, WarnList); Replace(F, WarnTemps)
		next, fixes := ApplyTemplates(res.Source, warns)
		if next == res.Source {
			// Template did not engage; leave the warning for the repair
			// stage rather than spinning.
			res.Log = append(res.Log, fmt.Sprintf("iter %d: no template for %d warning(s)", iter, len(warns)))
			break
		}
		res.Source = next
		res.Changed = true
		res.TemplateFixes = append(res.TemplateFixes, fixes...)
		res.Log = append(res.Log, fmt.Sprintf("iter %d: templates fixed %d warning(s)", iter, len(fixes)))
	}
	rep := lint.Lint(res.Source)
	res.LintRuns++
	res.Clean = len(rep.Errors()) == 0 && len(rep.FocusedWarnings()) == 0
	return res
}

func formatDiags(ds []lint.Diag) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

var sensListRe = regexp.MustCompile(`@\s*\([^)]*\)`)

// ApplyTemplates performs the script-side repairs of Algorithm 1 for the
// focused warnings, line-targeted by the linter diagnostics. It returns
// the rewritten source and a description of each fix applied.
func ApplyTemplates(src string, warns []lint.Diag) (string, []string) {
	ls := strings.Split(src, "\n")
	var fixes []string
	for _, w := range warns {
		li := w.Line - 1
		if li < 0 || li >= len(ls) {
			continue
		}
		line := ls[li]
		switch w.Code {
		case lint.CodeCombDelay:
			// "<=" in combinational logic becomes "=" (the paper's
			// running example).
			if strings.Contains(line, "<=") {
				ls[li] = strings.Replace(line, "<=", "=", 1)
				fixes = append(fixes, fmt.Sprintf("line %d: '<=' -> '=' (COMBDLY)", w.Line))
			}
		case lint.CodeBlockSeq:
			if i := blockingAssignIndex(line); i >= 0 {
				ls[li] = line[:i] + "<=" + line[i+1:]
				fixes = append(fixes, fmt.Sprintf("line %d: '=' -> '<=' (BLKSEQ)", w.Line))
			}
		case lint.CodeSens:
			// Incomplete sensitivity list becomes @(*).
			if sensListRe.MatchString(line) {
				ls[li] = sensListRe.ReplaceAllString(line, "@(*)")
				fixes = append(fixes, fmt.Sprintf("line %d: sensitivity list -> @(*)", w.Line))
			}
		case lint.CodeSyncAsync:
			// Add the missing reset edge to the list.
			edge := "negedge"
			if strings.Contains(w.Msg, "add posedge") {
				edge = "posedge"
			}
			if m := sensListRe.FindStringIndex(line); m != nil {
				inner := line[m[0]:m[1]]
				patched := inner[:len(inner)-1] + " or " + edge + " " + w.Signal + ")"
				ls[li] = line[:m[0]] + patched + line[m[1]:]
				fixes = append(fixes, fmt.Sprintf("line %d: added '%s %s' to sensitivity list", w.Line, edge, w.Signal))
			}
		}
	}
	return strings.Join(ls, "\n"), fixes
}

// blockingAssignIndex finds a bare "=" on the line that is not part of a
// two-character operator.
func blockingAssignIndex(line string) int {
	for i := 0; i < len(line); i++ {
		if line[i] != '=' {
			continue
		}
		if i > 0 && strings.ContainsRune("<>!=+-*/&|^~", rune(line[i-1])) {
			continue
		}
		if i+1 < len(line) && line[i+1] == '=' {
			i++
			continue
		}
		return i
	}
	return -1
}
