package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DiskCache is the on-disk content-addressed tier under Cache: one file
// per compile outcome, named by the hex sha256 of (source, top, backend),
// so warm compile state survives process restarts. A long-running server
// attaches one (Cache.AttachDisk) and calls Cache.WarmFromDisk at startup;
// after that, designs the previous process compiled are served from the
// in-memory tier without a cold request-path compile.
//
// What is persisted is the compile *outcome envelope*, not machine state:
// compiled Programs are closures and cannot be serialized, so a positive
// entry stores the canonical source text and is rehydrated by replaying it
// through the compiler once per process (at warm-up or on the first miss),
// while a negative entry stores the deterministic compile error and
// short-circuits with zero compile work. Every read is corruption
// tolerant: a truncated, garbled or checksum-mismatched file counts in
// Stats().DiskCorrupt and degrades to an ordinary miss — it is never
// surfaced as an error to the caller, and the entry is rewritten after
// the fresh compile.
//
// DiskCache is safe for concurrent use. Writes go through a temp file +
// rename so readers never observe a partial entry; per-key serialization
// is inherited from the single-flight memory tier above it.
type DiskCache struct {
	dir string

	// maxBytes is the eviction budget (0 = unbounded). When the tier
	// grows past it, least-recently-used entries — file modification
	// time is the recency clock; loads touch it — are removed until the
	// tier fits again. Eviction is an accelerator-tier policy like
	// everything else here: an evicted entry is simply a future miss.
	maxBytes atomic.Int64
	evictMu  sync.Mutex // serializes eviction sweeps

	// statMu guards stats as one value, so a Stats() snapshot is
	// internally consistent: related counters that move together (an
	// eviction's count and its reclaimed bytes) are updated under one
	// critical section and can never be observed half-applied, which six
	// independent atomics could not guarantee.
	statMu sync.Mutex
	stats  DiskStats
}

// count applies one counter update under the stats lock.
func (d *DiskCache) count(f func(*DiskStats)) {
	d.statMu.Lock()
	f(&d.stats)
	d.statMu.Unlock()
}

// NewDiskCache opens (creating if needed) the on-disk tier rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the directory backing this tier.
func (d *DiskCache) Dir() string { return d.dir }

// SetBudget caps the tier at maxBytes of entry files, evicting in
// least-recently-used order when exceeded (0 restores unbounded growth).
// The budget is enforced immediately and after every store.
func (d *DiskCache) SetBudget(maxBytes int64) {
	d.maxBytes.Store(maxBytes)
	d.evict()
}

// SizeBytes reports the current total size of the tier's entry files.
func (d *DiskCache) SizeBytes() int64 {
	var total int64
	for _, f := range d.entryFiles() {
		total += f.size
	}
	return total
}

// DiskStats is a point-in-time snapshot of the disk-tier counters. Like
// CacheStats it is a plain value copy: read it and let it go stale.
type DiskStats struct {
	Hits         int64 // entries loaded intact from disk
	Misses       int64 // lookups that found no entry
	Corrupt      int64 // entries dropped as corrupt (degraded to misses)
	Writes       int64 // entries written
	Evictions    int64 // entries removed by the LRU byte budget
	EvictedBytes int64 // bytes reclaimed by the LRU byte budget
}

// Stats returns a consistent snapshot of the disk-tier counters, taken
// under the tier's stats lock.
func (d *DiskCache) Stats() DiskStats {
	d.statMu.Lock()
	defer d.statMu.Unlock()
	return d.stats
}

// diskEntry is the JSON envelope of one persisted compile outcome. Sum is
// the hex sha256 over (Source, Top, Backend, Error) and is what makes
// reads corruption-evident: any bit flip in the payload (or a stale
// rename of a different key's file) fails the checksum and the entry is
// treated as absent.
type diskEntry struct {
	Top     string `json:"top"`
	Backend string `json:"backend"`
	Source  string `json:"source"`
	Error   string `json:"error,omitempty"`
	Sum     string `json:"sum"`
}

func (e *diskEntry) checksum() string {
	h := sha256.New()
	for _, s := range []string{e.Source, e.Top, e.Backend, e.Error} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entryName is the content address: hex sha256 over the same triple that
// keys the in-memory tier.
func entryName(src, top string, backend Backend) string {
	h := sha256.New()
	for _, s := range []string{src, top, backend.String()} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)) + ".json"
}

// load returns the persisted outcome for (src, top, backend). ok is false
// on a miss or a corrupt entry; corrupt entries are deleted so the
// rewrite after recompilation starts clean.
func (d *DiskCache) load(src, top string, backend Backend) (e diskEntry, ok bool) {
	path := filepath.Join(d.dir, entryName(src, top, backend))
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		d.count(func(st *DiskStats) { st.Misses++ })
		return diskEntry{}, false
	}
	if err != nil {
		d.count(func(st *DiskStats) { st.Corrupt++ })
		return diskEntry{}, false
	}
	if err := json.Unmarshal(data, &e); err != nil || e.Sum != e.checksum() {
		d.count(func(st *DiskStats) { st.Corrupt++ })
		os.Remove(path)
		return diskEntry{}, false
	}
	d.count(func(st *DiskStats) { st.Hits++ })
	// Touch the entry: mtime is the LRU recency clock. Best effort — a
	// read-only tier still serves hits, it just evicts in write order.
	now := time.Now()
	os.Chtimes(path, now, now)
	return e, true
}

// store persists one compile outcome. Failures are silent by design: the
// disk tier is an accelerator, and a full or read-only disk must never
// fail a compile that already succeeded in memory.
func (d *DiskCache) store(src, top string, backend Backend, compileErr error) {
	e := diskEntry{Top: top, Backend: backend.String(), Source: src}
	if compileErr != nil {
		e.Error = compileErr.Error()
	}
	e.Sum = e.checksum()
	data, err := json.Marshal(&e)
	if err != nil {
		return
	}
	path := filepath.Join(d.dir, entryName(src, top, backend))
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.count(func(st *DiskStats) { st.Writes++ })
	d.evict()
}

// entryFile is one on-disk entry's eviction bookkeeping.
type entryFile struct {
	path  string
	size  int64
	mtime time.Time
}

// entryFiles lists the tier's entry files with size and recency.
func (d *DiskCache) entryFiles() []entryFile {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var out []entryFile
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, entryFile{
			path:  filepath.Join(d.dir, de.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
	}
	return out
}

// evict enforces the byte budget, removing least-recently-used entries
// until the tier fits. Removal failures are skipped silently — like
// store, eviction must never surface an error for an accelerator tier.
func (d *DiskCache) evict() {
	budget := d.maxBytes.Load()
	if budget <= 0 {
		return
	}
	d.evictMu.Lock()
	defer d.evictMu.Unlock()
	files := d.entryFiles()
	var total int64
	for _, f := range files {
		total += f.size
	}
	if total <= budget {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path
	})
	for _, f := range files {
		if total <= budget {
			break
		}
		if os.Remove(f.path) != nil {
			continue
		}
		total -= f.size
		d.count(func(st *DiskStats) {
			st.Evictions++
			st.EvictedBytes += f.size
		})
	}
}

// entries walks the tier and decodes every intact entry, skipping (and
// counting) corrupt ones. Used by WarmFromDisk.
func (d *DiskCache) entries() []diskEntry {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var out []diskEntry
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(d.dir, de.Name()))
		if err != nil {
			d.count(func(st *DiskStats) { st.Corrupt++ })
			continue
		}
		var e diskEntry
		if err := json.Unmarshal(data, &e); err != nil || e.Sum != e.checksum() {
			d.count(func(st *DiskStats) { st.Corrupt++ })
			os.Remove(filepath.Join(d.dir, de.Name()))
			continue
		}
		out = append(out, e)
	}
	return out
}
