package sim

import (
	"strings"
	"testing"
)

func TestWriteVCD(t *testing.T) {
	src := `module c(input clk, input rst_n, input en, output reg [3:0] q);
always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else if (en) q <= q + 4'd1;
end
endmodule`
	s := mustSim(t, src, "c")
	h := NewHarness(s, "clk")
	if err := h.ApplyReset(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := h.Cycle(map[string]uint64{"en": 1, "rst_n": 1}); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := WriteVCD(&b, h.Wave, s.Design(), "c"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module c $end",
		"$var wire 4 ", // q is 4 bits wide
		"$enddefinitions $end",
		"#0",
		"b1 ",   // q = 1 at some step
		"b101 ", // q = 5 on the last counted step
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Values only dumped on change: en stays 1 after cycle 1, so it must
	// appear at most twice (reset cycle value 0, then 1).
	lines := strings.Split(out, "\n")
	enID := ""
	for _, ln := range lines {
		if strings.HasPrefix(ln, "$var") && strings.HasSuffix(ln, " en $end") {
			enID = strings.Fields(ln)[3]
		}
	}
	if enID == "" {
		t.Fatal("en not declared")
	}
	count := 0
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "$") && strings.HasSuffix(ln, enID) && !strings.Contains(ln, "$var") {
			count++
		}
	}
	if count > 2 {
		t.Errorf("en dumped %d times; change-only dumping broken", count)
	}
}

func TestVCDIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		id := vcdID(i)
		if id == "" || seen[id] {
			t.Fatalf("vcdID(%d) = %q duplicate or empty", i, id)
		}
		seen[id] = true
		for j := 0; j < len(id); j++ {
			if id[j] < 33 || id[j] > 126 {
				t.Fatalf("vcdID(%d) contains non-printable %q", i, id)
			}
		}
	}
}
