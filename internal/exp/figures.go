package exp

import (
	"fmt"
	"strings"

	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
)

// Rates bundles the two headline metrics for one method on one slice of
// the benchmark.
type Rates struct {
	HR float64 // Hit Rate, % (Eq. 1): the method's own testbench passes
	FR float64 // Fix Rate, % (Eq. 2): expert validation passes
	N  int
}

func computeRates(recs []*Record, hit, fix func(*Record) bool) Rates {
	r := Rates{N: len(recs)}
	if len(recs) == 0 {
		return r
	}
	h, f := 0, 0
	for _, rec := range recs {
		if hit(rec) {
			h++
		}
		if fix(rec) {
			f++
		}
	}
	r.HR = 100 * float64(h) / float64(len(recs))
	r.FR = 100 * float64(f) / float64(len(recs))
	return r
}

// Method accessors shared by the figures.
var (
	uvllmHit   = func(r *Record) bool { return r.UVLLM.Success }
	uvllmFix   = func(r *Record) bool { return r.UVLLMFix }
	meicHit    = func(r *Record) bool { return r.MEIC.Hit }
	meicFix    = func(r *Record) bool { return r.MEICFix }
	rawHit     = func(r *Record) bool { return r.Raw.Hit }
	rawFix     = func(r *Record) bool { return r.RawFix }
	striderHit = func(r *Record) bool { return r.Strider != nil && r.Strider.Hit }
	striderFix = func(r *Record) bool { return r.StriderFix }
	rtlHit     = func(r *Record) bool { return r.RTLRepair != nil && r.RTLRepair.Hit }
	rtlFix     = func(r *Record) bool { return r.RTLRepairFix }
)

// Fig5Row is one category of the syntax-error comparison (paper Fig. 5).
type Fig5Row struct {
	Category string
	UVLLM    Rates
	MEIC     Rates
	Raw      Rates
}

// Fig5 computes HR vs FR for syntax errors across the five categories and
// the average row, for UVLLM, MEIC and raw GPT-4-turbo.
func Fig5(recs []*Record) []Fig5Row {
	var rows []Fig5Row
	byCat := map[string][]*Record{}
	var order []string
	for _, c := range faultgen.SyntaxClasses() {
		order = append(order, c.Fig5Category())
	}
	var all []*Record
	for _, r := range recs {
		if !r.Fault.Class.IsSyntax() {
			continue
		}
		cat := r.Fault.Class.Fig5Category()
		byCat[cat] = append(byCat[cat], r)
		all = append(all, r)
	}
	for _, cat := range order {
		rows = append(rows, fig5Row(cat, byCat[cat]))
	}
	rows = append(rows, fig5Row("Average", all))
	return rows
}

func fig5Row(cat string, recs []*Record) Fig5Row {
	return Fig5Row{
		Category: cat,
		UVLLM:    computeRates(recs, uvllmHit, uvllmFix),
		MEIC:     computeRates(recs, meicHit, meicFix),
		Raw:      computeRates(recs, rawHit, rawFix),
	}
}

// FormatFig5 renders the figure as an aligned text table.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Fig. 5 — HR vs FR, syntax errors (%)\n")
	fmt.Fprintf(&b, "%-24s %4s | %7s %7s | %7s %7s | %7s %7s\n",
		"Category", "N", "UV-FR", "UV-HR", "MEIC-FR", "MEIC-HR", "GPT-FR", "GPT-HR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %4d | %7.2f %7.2f | %7.2f %7.2f | %7.2f %7.2f\n",
			r.Category, r.UVLLM.N,
			r.UVLLM.FR, r.UVLLM.HR, r.MEIC.FR, r.MEIC.HR, r.Raw.FR, r.Raw.HR)
	}
	return b.String()
}

// Fig6Row is one category of the functional-error comparison (paper
// Fig. 6).
type Fig6Row struct {
	Category  string
	UVLLM     Rates
	Raw       Rates
	Strider   Rates
	MEIC      Rates
	RTLRepair Rates
}

// Fig6 computes HR vs FR for functional errors across the four categories
// plus the average, for all five methods.
func Fig6(recs []*Record) []Fig6Row {
	byCat := map[string][]*Record{}
	var order []string
	for _, c := range faultgen.FunctionalClasses() {
		order = append(order, c.Fig6Category())
	}
	var all []*Record
	for _, r := range recs {
		if r.Fault.Class.IsSyntax() {
			continue
		}
		cat := r.Fault.Class.Fig6Category()
		byCat[cat] = append(byCat[cat], r)
		all = append(all, r)
	}
	var rows []Fig6Row
	for _, cat := range order {
		rows = append(rows, fig6Row(cat, byCat[cat]))
	}
	rows = append(rows, fig6Row("Average", all))
	return rows
}

func fig6Row(cat string, recs []*Record) Fig6Row {
	return Fig6Row{
		Category:  cat,
		UVLLM:     computeRates(recs, uvllmHit, uvllmFix),
		Raw:       computeRates(recs, rawHit, rawFix),
		Strider:   computeRates(recs, striderHit, striderFix),
		MEIC:      computeRates(recs, meicHit, meicFix),
		RTLRepair: computeRates(recs, rtlHit, rtlFix),
	}
}

// FormatFig6 renders the figure as an aligned text table.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — HR vs FR, functional errors (%)\n")
	fmt.Fprintf(&b, "%-20s %4s | %6s %6s | %6s | %7s | %6s | %6s | %6s\n",
		"Category", "N", "UV-FR", "UV-HR", "GPT-FR", "Strider", "MEIC", "RTLrep", "HR-gap")
	for _, r := range rows {
		gap := r.MEIC.HR - r.MEIC.FR
		fmt.Fprintf(&b, "%-20s %4d | %6.2f %6.2f | %6.2f | %7.2f | %6.2f | %6.2f | %6.2f\n",
			r.Category, r.UVLLM.N,
			r.UVLLM.FR, r.UVLLM.HR, r.Raw.FR, r.Strider.FR, r.MEIC.FR, r.RTLRepair.FR, gap)
	}
	return b.String()
}

// Fig7Cell is one (module, class) cell of the heat map.
type Fig7Cell struct {
	Applicable bool
	N          int
	FR         float64 // fraction in [0,1], as the paper's heat map
}

// Fig7Row is one module of the heat map with per-class cells and the
// weighted syntax/functional means.
type Fig7Row struct {
	Module   string
	Category dataset.Category
	Cells    map[faultgen.Class]Fig7Cell
	Syntax   Fig7Cell // weighted mean over syntax classes
	Function Fig7Cell // weighted mean over functional classes
}

// Fig7 computes the 27-module × 9-class fix-rate heat map for UVLLM.
func Fig7(recs []*Record) []Fig7Row {
	byMod := map[string][]*Record{}
	for _, r := range recs {
		byMod[r.Fault.Module] = append(byMod[r.Fault.Module], r)
	}
	var rows []Fig7Row
	for _, m := range dataset.All() {
		row := Fig7Row{Module: m.Name, Category: m.Category, Cells: map[faultgen.Class]Fig7Cell{}}
		for _, c := range faultgen.Classes() {
			var cell Fig7Cell
			hits := 0
			for _, r := range byMod[m.Name] {
				if r.Fault.Class != c {
					continue
				}
				cell.Applicable = true
				cell.N++
				if r.UVLLMFix {
					hits++
				}
			}
			if cell.N > 0 {
				cell.FR = float64(hits) / float64(cell.N)
			}
			row.Cells[c] = cell
			agg := &row.Syntax
			if !c.IsSyntax() {
				agg = &row.Function
			}
			if cell.Applicable {
				agg.Applicable = true
				agg.FR = (agg.FR*float64(agg.N) + cell.FR*float64(cell.N)) / float64(agg.N+cell.N)
				agg.N += cell.N
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatFig7 renders the heat map as a text grid; "  × " marks cells the
// module's structure cannot express (the paper's × symbol).
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Fig. 7 — FR heat map (fraction fixed; x = not expressible)\n")
	fmt.Fprintf(&b, "%-18s", "Module")
	short := []string{"Semi", "Scope", "BadOp", "Typo", "Lit", "Decl", "Cond", "Bitw", "Logic"}
	for _, s := range short {
		fmt.Fprintf(&b, " %5s", s)
	}
	fmt.Fprintf(&b, " | %6s %6s\n", "Syntax", "Func")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s", r.Module)
		for _, c := range faultgen.Classes() {
			cell := r.Cells[c]
			if !cell.Applicable {
				fmt.Fprintf(&b, " %5s", "x")
			} else {
				fmt.Fprintf(&b, " %5.2f", cell.FR)
			}
		}
		b.WriteString(" |")
		for _, agg := range []Fig7Cell{r.Syntax, r.Function} {
			if !agg.Applicable {
				fmt.Fprintf(&b, " %6s", "x")
			} else {
				fmt.Fprintf(&b, " %6.2f", agg.FR)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
