package formal

import (
	"fmt"
	"math/bits"

	"uvllm/internal/sim"
)

// Counterexample is a refutation witness: the per-cycle stimulus (every
// driven input, frozen reset included) that makes two designs' outputs
// diverge, or an assertion fail, at cycle Cycle of the post-reset run.
// Vectors converts it into replayable per-cycle stimulus — the bridge
// from a SAT model back into the simulation world (wrap the result in a
// uvm.DirectedSequence to play it through a testbench; formal cannot
// import uvm, which now sits above the bit-parallel simulator and the
// bit-blaster both).
type Counterexample struct {
	Inputs []map[string]uint64 // one map per harness cycle, in order
	Cycle  int                 // 0-based cycle of the divergence/violation
	Signal string              // a diverging output (or the asserted signal)
}

// Weight is the total number of set stimulus bits across the whole
// counterexample — the quantity minimization drives down (shorter, mostly
// zero directed sequences replay and read better in uvm logs).
func (c *Counterexample) Weight() int {
	n := 0
	for _, in := range c.Inputs {
		for _, v := range in {
			n += bits.OnesCount64(v)
		}
	}
	return n
}

// Vectors deep-copies the stimulus stream, one map per harness cycle.
func (c *Counterexample) Vectors() []map[string]uint64 {
	vecs := make([]map[string]uint64, len(c.Inputs))
	for i, in := range c.Inputs {
		cp := make(map[string]uint64, len(in))
		for k, v := range in {
			cp[k] = v
		}
		vecs[i] = cp
	}
	return vecs
}

// DefaultBMCDepth is the conventional unrolling depth of the bounded
// checks: deep enough that every register of the benchmark modules is
// written at least once post-reset, shallow enough that full-table
// studies solve in seconds. Callers pass it where no caller-specific
// depth applies.
const DefaultBMCDepth = 8

// EquivResult is the verdict of a bounded equivalence check (or of a
// k-induction run, which can strengthen the bound into an all-time
// proof).
type EquivResult struct {
	Equivalent bool // UNSAT at every depth through K
	// Unbounded marks an equivalence that holds for every depth, not just
	// through K: InductionEquiv sets it when the inductive step closes.
	Unbounded bool
	Depth     int             // depth proved/refuted at, or the window that closed induction
	Cex       *Counterexample // nil when equivalent (minimized under Options.MinimizeCex)
	// RawCex is the unminimized counterexample when Options.MinimizeCex
	// rewrote Cex, nil otherwise; tests compare the two.
	RawCex *Counterexample
	Stats  BMCStats
}

// BMCStats aggregates per-depth solver work of one bounded check.
type BMCStats struct {
	AIGNodes int          // graph size after the full unrolling
	Solves   []SolveStats // one entry per depth actually solved
}

// Conflicts sums the conflict counts over all depths.
func (s BMCStats) Conflicts() int {
	n := 0
	for _, sv := range s.Solves {
		n += sv.Conflicts
	}
	return n
}

// BMCEquiv checks bounded sequential equivalence of two compiled designs:
// both are reset concretely, then unrolled k cycles over shared per-cycle
// input variables (a miter), and each depth asks the SAT solver whether
// any output can differ at that cycle. UNSAT through depth k proves the
// designs indistinguishable by any k-cycle post-reset stimulus under the
// protocol (reset held deasserted); SAT returns a replayable
// counterexample. Output sets are compared on a's ports, with ports b
// lacks reading zero — the same convention as the scoreboard's map
// compare. Designs outside the blastable subset return ErrUnsupported.
func BMCEquiv(a, b *sim.Program, clock string, k int) (EquivResult, error) {
	return BMCEquivOpts(a, b, clock, k, Options{})
}

// miter pairs two models over one shared AIG with their rolling states:
// the unrolling machinery common to bounded equivalence and the
// k-induction window.
type miter struct {
	g        *AIG
	ma, mb   *Model
	sta, stb *State
	inputs   []map[string]Vec // a's per-cycle stimulus variables, in order
}

// newMiter blasts both programs into one graph. b's free inputs that a
// also drives will share a's variables; inputs only b has stay at their
// previous values (the harness never sets them).
func newMiter(g *AIG, a, b *sim.Program, opts Options) (*miter, error) {
	ma, err := newModelShared(g, a, opts)
	if err != nil {
		return nil, err
	}
	mb, err := newModelShared(g, b, opts)
	if err != nil {
		return nil, err
	}
	return &miter{g: g, ma: ma, mb: mb}, nil
}

// init sets both states to the concrete post-reset snapshot.
func (u *miter) init() error {
	sta, err := u.ma.InitState()
	if err != nil {
		return err
	}
	stb, err := u.mb.InitState()
	if err != nil {
		return err
	}
	u.sta, u.stb = sta, stb
	return nil
}

// step advances both sides one harness cycle under fresh shared inputs
// and returns the per-output difference literals and their disjunction
// ("some output differs at this cycle").
func (u *miter) step() (bad Lit, diffs []Lit, err error) {
	inA := u.ma.FreshInputs()
	inB := map[string]Vec{}
	for _, p := range u.mb.FreeInputs() {
		if v, ok := inA[p.Name]; ok {
			inB[p.Name] = v
		}
	}
	u.inputs = append(u.inputs, inA)
	if u.sta, err = u.ma.Step(u.sta, inA); err != nil {
		return False, nil, err
	}
	if u.stb, err = u.mb.Step(u.stb, inB); err != nil {
		return False, nil, err
	}
	g := u.g
	bad = False
	diffs = make([]Lit, len(u.ma.Outputs()))
	for i, p := range u.ma.Outputs() {
		av := u.ma.OutputVec(u.sta, i)
		bv, ok := u.mb.OutputVecByName(u.stb, p.Name)
		if !ok {
			bv = g.ConstVec(0, len(av))
		}
		w := len(av)
		if len(bv) > w {
			w = len(bv)
		}
		d := g.EqVec(g.Resize(av, w), g.Resize(bv, w)).Not()
		diffs[i] = d
		bad = g.Or(bad, d)
	}
	return bad, diffs, nil
}

// BMCEquivOpts is BMCEquiv with explicit blaster options. The default
// path is incremental: one solver instance per equivalence query, the
// Tseitin frame of every depth retained (frozen frame variables), each
// depth solved under the single assumption "the miter differs at this
// cycle" and, on UNSAT, strengthened into the permanent fact that it does
// not — so deeper solves reuse everything learned at shallower ones.
// Options.FromScratch restores the PR-5 fresh-solver-per-depth loop for
// differential testing and benchmarking.
func BMCEquivOpts(a, b *sim.Program, clock string, k int, opts Options) (EquivResult, error) {
	if opts.FromScratch {
		return bmcEquivScratch(a, b, clock, k, opts)
	}
	var res EquivResult
	g := NewAIG()
	opts.Clock = clock
	bSp := opts.Span.Child("blast")
	u, err := newMiter(g, a, b, opts)
	if err != nil {
		bSp.End()
		return res, err
	}
	err = u.init()
	bSp.End()
	if err != nil {
		return res, err
	}
	s := NewSolver(0)
	s.MaxConflicts = opts.MaxConflicts
	ti := NewIncTseitin(g, s)

	// Depths are solved by iterative deepening — one (cheap, usually
	// structurally collapsed) solve per cycle — which both finds the
	// earliest possible divergence and beats a single deep solve in
	// practice: SAT mutants decide at the first reachable depth, and the
	// shared unrolling prefix is hashed away across depths.
	for t := 0; t < k; t++ {
		if err := opts.cancelled(t); err != nil {
			return res, err
		}
		bad, diffs, err := u.step()
		if err != nil {
			return res, err
		}
		res.Stats.AIGNodes = g.NumNodes()
		if c, v := g.IsConst(bad); c && !v {
			continue // structurally identical at this depth: no solve needed
		}
		badLit := ti.Lit(bad)
		dSp := opts.Span.Child("bmc_depth")
		dSp.SetArg("depth", fmt.Sprintf("%d", t))
		sat := s.SolveAssuming(badLit)
		dSp.End()
		res.Stats.Solves = append(res.Stats.Solves, s.CallStats())
		if s.Exhausted() {
			return res, fmt.Errorf("%w: depth %d after %d conflicts", ErrBudget, t, s.Stats().Conflicts)
		}
		if sat {
			res.Depth = t
			res.Cex = extractCex(u.ma, u.inputs, ti.Vars(), s, diffs, t)
			if opts.MinimizeCex {
				res.RawCex = res.Cex
				minimizeModel(s, ti, badLit, u.inputs)
				res.Cex = extractCex(u.ma, u.inputs, ti.Vars(), s, diffs, t)
			}
			return res, nil
		}
		// UNSAT under the assumption: the miter provably cannot differ at
		// this cycle, a permanent fact that strengthens deeper solves.
		s.AddClause(-badLit)
	}
	res.Equivalent = true
	res.Depth = k
	res.Stats.AIGNodes = g.NumNodes()
	return res, nil
}

// bmcEquivScratch is the pre-incremental reference loop: a fresh solver
// and a fresh Tseitin conversion per depth. Kept as the differential twin
// of the incremental path (TestIncrementalMatchesScratch and the
// BenchmarkBMCEquiv / BenchmarkBMCEquivIncremental benchguard pair).
func bmcEquivScratch(a, b *sim.Program, clock string, k int, opts Options) (EquivResult, error) {
	var res EquivResult
	g := NewAIG()
	opts.Clock = clock
	u, err := newMiter(g, a, b, opts)
	if err != nil {
		return res, err
	}
	if err := u.init(); err != nil {
		return res, err
	}
	for t := 0; t < k; t++ {
		if err := opts.cancelled(t); err != nil {
			return res, err
		}
		bad, diffs, err := u.step()
		if err != nil {
			return res, err
		}
		res.Stats.AIGNodes = g.NumNodes()
		if c, v := g.IsConst(bad); c && !v {
			continue
		}
		cnf, vars := g.Tseitin([]Lit{bad})
		s := NewSolverCNF(cnf)
		s.MaxConflicts = opts.MaxConflicts
		dSp := opts.Span.Child("bmc_depth")
		dSp.SetArg("depth", fmt.Sprintf("%d", t))
		sat := s.Solve()
		dSp.End()
		res.Stats.Solves = append(res.Stats.Solves, s.Stats())
		if s.Exhausted() {
			return res, fmt.Errorf("%w: depth %d after %d conflicts", ErrBudget, t, s.Stats().Conflicts)
		}
		if !sat {
			continue
		}
		res.Depth = t
		res.Cex = extractCex(u.ma, u.inputs, vars, s, diffs, t)
		return res, nil
	}
	res.Equivalent = true
	res.Depth = k
	res.Stats.AIGNodes = g.NumNodes()
	return res, nil
}

// extractCex decodes the SAT model into concrete per-cycle stimulus and
// names one diverging output.
func extractCex(m *Model, inputs []map[string]Vec, vars map[uint32]int, s *Solver, diffs []Lit, cycle int) *Counterexample {
	g := m.g
	assign := func(n uint32) bool { return s.Value(vars[n]) }
	cex := &Counterexample{Cycle: cycle}
	frozen := m.FrozenInputs()
	for _, in := range inputs {
		vals := map[string]uint64{}
		for name, vec := range in {
			bits := g.Eval(assign, vec)
			var v uint64
			for i, b := range bits {
				if b {
					v |= 1 << uint(i)
				}
			}
			vals[name] = v
		}
		for name, v := range frozen {
			vals[name] = v
		}
		cex.Inputs = append(cex.Inputs, vals)
	}
	for i, d := range diffs {
		if got := g.Eval(assign, []Lit{d}); got[0] {
			cex.Signal = m.Outputs()[i].Name
			break
		}
	}
	return cex
}

// CombEquiv is bounded equivalence specialized to combinational designs:
// a depth-1 unrolling (one input application and settle) is exhaustive
// when neither design carries state.
func CombEquiv(a, b *sim.Program) (EquivResult, error) {
	return BMCEquiv(a, b, "", 1)
}

// ReplayCex drives both sources through fresh simulator instances on the
// given backend under the counterexample's stimulus — the differential
// reset protocol, then the recorded vectors — and reports whether any
// output diverged and at which cycle. A formal SAT verdict is only
// trusted once this returns true; the agreement oracles assert it.
func ReplayCex(srcA, srcB, top, clock string, cex *Counterexample, backend sim.Backend) (bool, int, error) {
	sA, err := sim.CompileAndNewBackend(srcA, top, backend)
	if err != nil {
		return false, 0, fmt.Errorf("formal: replay: %w", err)
	}
	sB, err := sim.CompileAndNewBackend(srcB, top, backend)
	if err != nil {
		return true, 0, nil // b does not even elaborate: divergent by definition
	}
	hA, hB := sim.NewHarness(sA, clock), sim.NewHarness(sB, clock)
	if err := hA.ApplyReset(ResetCycles); err != nil {
		return false, 0, err
	}
	if err := hB.ApplyReset(ResetCycles); err != nil {
		return true, 0, nil
	}
	for cyc, in := range cex.Inputs {
		inA, inB := map[string]uint64{}, map[string]uint64{}
		for k, v := range in {
			if sA.Has(k) {
				inA[k] = v
			}
			if sB.Has(k) {
				inB[k] = v
			}
		}
		outA, errA := hA.Cycle(inA)
		outB, errB := hB.Cycle(inB)
		if (errA == nil) != (errB == nil) {
			return true, cyc, nil
		}
		if errA != nil {
			return false, 0, fmt.Errorf("formal: replay: both died at cycle %d: %v", cyc, errA)
		}
		for name, v := range outA {
			if outB[name] != v {
				return true, cyc, nil
			}
		}
	}
	return false, 0, nil
}
