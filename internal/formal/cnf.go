package formal

// CNF is a clause set in near-DIMACS form: variables are 1-based ints, a
// negative literal is the negation of its variable.
type CNF struct {
	NumVars int
	Clauses [][]int
}

// AddClause appends one clause.
func (c *CNF) AddClause(lits ...int) {
	c.Clauses = append(c.Clauses, lits)
}

// IncTseitin loads AIG cones into a live solver incrementally: each call
// to Lit walks the cone of one literal, allocates solver variables for
// the nodes it has not seen and emits their defining clauses exactly
// once. The AIG is append-only, so a node's definition never changes and
// the emitted clauses stay valid for the lifetime of the solver — this is
// what lets BMCEquiv's iterative deepening extend one retained unrolling
// (frame variables of earlier depths stay allocated and constrained)
// instead of re-Tseitin-ing from scratch at every depth.
type IncTseitin struct {
	g       *AIG
	s       *Solver
	vars    map[uint32]int
	trueVar int // lazily pinned true variable for constant literals
}

// NewIncTseitin binds an incremental loader to a graph/solver pair.
func NewIncTseitin(g *AIG, s *Solver) *IncTseitin {
	return &IncTseitin{g: g, s: s, vars: map[uint32]int{}}
}

// Vars returns the live AIG-node-to-solver-variable mapping (grown by
// every Lit call) — the decode map for SAT models, in the same form
// Tseitin returns.
func (t *IncTseitin) Vars() map[uint32]int { return t.vars }

// Lit returns the solver literal equivalent to the AIG literal l, loading
// the defining clauses of any cone nodes the solver has not seen yet.
// Constant literals map onto a dedicated variable pinned true by a unit
// clause.
func (t *IncTseitin) Lit(l Lit) int {
	if c, v := t.g.IsConst(l); c {
		if t.trueVar == 0 {
			t.trueVar = t.s.NewVar()
			t.s.AddClause(t.trueVar)
		}
		if v {
			return t.trueVar
		}
		return -t.trueVar
	}
	t.load(l.Node())
	v := t.vars[l.Node()]
	if l.Neg() {
		return -v
	}
	return v
}

// load emits defining clauses for every unvisited node in n's cone,
// bottom-up.
func (t *IncTseitin) load(n uint32) {
	if _, ok := t.vars[n]; ok {
		return
	}
	g, s := t.g, t.s
	stack := []uint32{n}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		if _, ok := t.vars[nd]; ok {
			stack = stack[:len(stack)-1]
			continue
		}
		node := g.nodes[nd]
		if node.a == varSentinel {
			t.vars[nd] = s.NewVar()
			stack = stack[:len(stack)-1]
			continue
		}
		an, bn := node.a.Node(), node.b.Node()
		if _, ok := t.vars[an]; !ok && an != 0 {
			stack = append(stack, an)
			continue
		}
		if _, ok := t.vars[bn]; !ok && bn != 0 {
			stack = append(stack, bn)
			continue
		}
		v := s.NewVar()
		t.vars[nd] = v
		a, b := t.Lit(node.a), t.Lit(node.b)
		// v <-> a AND b
		s.AddClause(-v, a)
		s.AddClause(-v, b)
		s.AddClause(v, -a, -b)
		stack = stack[:len(stack)-1]
	}
}

// Tseitin converts the cone of influence of the given roots into CNF,
// asserting every root literal true. It returns the clause set and the
// mapping from AIG node index to CNF variable (only nodes inside the cone
// are mapped; the caller uses the map to decode SAT models back into AIG
// variable assignments).
func (g *AIG) Tseitin(roots []Lit) (*CNF, map[uint32]int) {
	cnf := &CNF{}
	vars := map[uint32]int{}
	newVar := func(n uint32) int {
		if v, ok := vars[n]; ok {
			return v
		}
		cnf.NumVars++
		vars[n] = cnf.NumVars
		return cnf.NumVars
	}
	lit := func(l Lit) int {
		v := vars[l.Node()]
		if l.Neg() {
			return -v
		}
		return v
	}

	// Collect the cone bottom-up.
	visited := map[uint32]bool{0: true}
	var order []uint32
	var stack []uint32
	for _, r := range roots {
		if n := r.Node(); !visited[n] {
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		if visited[n] {
			stack = stack[:len(stack)-1]
			continue
		}
		nd := g.nodes[n]
		if nd.a == varSentinel {
			visited[n] = true
			order = append(order, n)
			stack = stack[:len(stack)-1]
			continue
		}
		an, bn := nd.a.Node(), nd.b.Node()
		if !visited[an] {
			stack = append(stack, an)
			continue
		}
		if !visited[bn] {
			stack = append(stack, bn)
			continue
		}
		visited[n] = true
		order = append(order, n)
		stack = stack[:len(stack)-1]
	}

	for _, n := range order {
		v := newVar(n)
		nd := g.nodes[n]
		if nd.a == varSentinel {
			continue // free input variable: no defining clauses
		}
		a, b := lit(nd.a), lit(nd.b)
		// v <-> a AND b
		cnf.AddClause(-v, a)
		cnf.AddClause(-v, b)
		cnf.AddClause(v, -a, -b)
	}
	for _, r := range roots {
		if c, val := g.IsConst(r); c {
			if !val {
				// Root is constant false: the formula is trivially UNSAT.
				cnf.AddClause()
			}
			continue
		}
		cnf.AddClause(lit(r))
	}
	return cnf, vars
}
