package sim

import (
	"fmt"
	"io"
	"strconv"
)

// WriteVCD renders a recorded waveform as an IEEE 1364 Value Change Dump,
// the interchange format every waveform viewer reads. Signal widths are
// taken from the design; one waveform cycle maps to one timestep.
func WriteVCD(w io.Writer, wave *Waveform, d *Design, top string) error {
	widths := map[string]int{}
	for _, p := range d.Inputs() {
		widths[p.Name] = p.Width
	}
	for _, p := range d.Outputs() {
		widths[p.Name] = p.Width
	}
	names := wave.Names()

	if _, err := fmt.Fprintf(w, "$date\n    (uvllm simulation)\n$end\n$version\n    uvllm sim VCD dumper\n$end\n$timescale 1ns $end\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "$scope module %s $end\n", top); err != nil {
		return err
	}
	ids := map[string]string{}
	for i, n := range names {
		id := vcdID(i)
		ids[n] = id
		width := widths[n]
		if width == 0 {
			width = 1
		}
		if _, err := fmt.Fprintf(w, "$var wire %d %s %s $end\n", width, id, n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}

	last := map[string]uint64{}
	for cyc := 0; cyc < wave.Cycles(); cyc++ {
		wroteTime := false
		for _, n := range names {
			v := wave.At(n, cyc)
			if cyc > 0 && last[n] == v {
				continue
			}
			if !wroteTime {
				if _, err := fmt.Fprintf(w, "#%d\n", cyc); err != nil {
					return err
				}
				wroteTime = true
			}
			width := widths[n]
			if width <= 1 {
				if _, err := fmt.Fprintf(w, "%d%s\n", v&1, ids[n]); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(w, "b%s %s\n", strconv.FormatUint(v, 2), ids[n]); err != nil {
					return err
				}
			}
			last[n] = v
		}
	}
	_, err := fmt.Fprintf(w, "#%d\n", wave.Cycles())
	return err
}

// vcdID maps an index to a short printable identifier per the VCD spec
// (characters '!'..'~', multi-character when needed).
func vcdID(i int) string {
	const lo, hi = 33, 126
	const base = hi - lo + 1
	var out []byte
	for {
		out = append(out, byte(lo+i%base))
		i = i / base
		if i == 0 {
			break
		}
		i--
	}
	return string(out)
}
