package formal

import (
	"testing"

	"uvllm/internal/assert"
	"uvllm/internal/sim"
)

func mustCompile(t *testing.T, src, top string) *sim.Program {
	t.Helper()
	p, err := sim.CompileSource(src, top, sim.BackendCompiled)
	if err != nil {
		t.Fatalf("compile %s: %v", top, err)
	}
	return p
}

// TestCombEquivStructurallyDifferent proves two structurally different
// adder implementations equivalent — a genuinely non-trivial UNSAT the
// structural hashing cannot collapse.
func TestCombEquivStructurallyDifferent(t *testing.T) {
	flat := `module add(input [7:0] a, input [7:0] b, input cin, output [7:0] sum, output cout);
    assign {cout, sum} = a + b + {7'd0, cin};
endmodule
`
	ripple := `module fa(input x, input y, input ci, output s, output co);
    assign s = x ^ y ^ ci;
    assign co = (x & y) | (ci & (x ^ y));
endmodule
module add(input [7:0] a, input [7:0] b, input cin, output [7:0] sum, output cout);
    wire c1, c2, c3, c4, c5, c6, c7;
    fa f0(.x(a[0]), .y(b[0]), .ci(cin), .s(sum[0]), .co(c1));
    fa f1(.x(a[1]), .y(b[1]), .ci(c1), .s(sum[1]), .co(c2));
    fa f2(.x(a[2]), .y(b[2]), .ci(c2), .s(sum[2]), .co(c3));
    fa f3(.x(a[3]), .y(b[3]), .ci(c3), .s(sum[3]), .co(c4));
    fa f4(.x(a[4]), .y(b[4]), .ci(c4), .s(sum[4]), .co(c5));
    fa f5(.x(a[5]), .y(b[5]), .ci(c5), .s(sum[5]), .co(c6));
    fa f6(.x(a[6]), .y(b[6]), .ci(c6), .s(sum[6]), .co(c7));
    fa f7(.x(a[7]), .y(b[7]), .ci(c7), .s(sum[7]), .co(cout));
endmodule
`
	res, err := CombEquiv(mustCompile(t, flat, "add"), mustCompile(t, ripple, "add"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("flat and ripple adders must be equivalent; cex at cycle %d on %s", res.Cex.Cycle, res.Cex.Signal)
	}
	if len(res.Stats.Solves) == 0 {
		t.Fatal("equivalence was established without a SAT solve: the miter collapsed, so the UNSAT path went untested")
	}
}

const cntGolden = `module cnt(input clk, input rst_n, input en, input [7:0] d, output reg [7:0] q, output hit);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) q <= 8'd0;
        else if (en) q <= q + 8'd1;
    end
    assign hit = (q == d);
endmodule
`

// cntBug counts by 2 once the counter passes 8'h0b: a divergence only a
// deep multi-cycle unrolling can expose from the reset state (the counter
// must first be driven up for 12 consecutive enabled cycles).
const cntBug = `module cnt(input clk, input rst_n, input en, input [7:0] d, output reg [7:0] q, output hit);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) q <= 8'd0;
        else if (en) begin
            if (q > 8'h0b) q <= q + 8'd2;
            else q <= q + 8'd1;
        end
    end
    assign hit = (q == d);
endmodule
`

// TestBMCEquivSelfAndDeepBug checks both verdicts of the sequential
// engine: a design is k-equivalent to itself, shallow unrollings cannot
// see a deep bug, and a deep enough unrolling refutes it with a
// counterexample that concrete simulation reproduces on both backends.
func TestBMCEquivSelfAndDeepBug(t *testing.T) {
	golden := mustCompile(t, cntGolden, "cnt")
	bug := mustCompile(t, cntBug, "cnt")

	res, err := BMCEquiv(golden, golden, "clk", 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || res.Depth != 6 {
		t.Fatalf("self-equivalence: %+v", res)
	}

	// The bug needs q > 0x0b: unreachable within a few post-reset cycles.
	res, err = BMCEquiv(golden, bug, "clk", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("divergence needs >= 13 cycles, found cex at depth %d", res.Depth)
	}

	res, err = BMCEquiv(golden, bug, "clk", 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("BMC to depth 16 must refute the deep counter bug")
	}
	if res.Cex == nil || len(res.Cex.Inputs) != res.Depth+1 {
		t.Fatalf("malformed counterexample: %+v", res.Cex)
	}
	if res.Depth < 12 {
		t.Fatalf("earliest divergence should need >= 13 cycles, got depth %d", res.Depth)
	}
	for _, backend := range []sim.Backend{sim.BackendCompiled, sim.BackendEventDriven} {
		div, cyc, err := ReplayCex(cntGolden, cntBug, "cnt", "clk", res.Cex, backend)
		if err != nil {
			t.Fatalf("replay on %v: %v", backend, err)
		}
		if !div {
			t.Fatalf("counterexample did not reproduce on backend %v", backend)
		}
		if cyc != res.Cex.Cycle {
			t.Fatalf("replay diverged at cycle %d, formal predicted %d", cyc, res.Cex.Cycle)
		}
	}
}

// TestCexSequenceBridge is the counterexample-to-sequence bridge: the SAT
// model becomes a uvm.DirectedSequence whose materialized vectors, driven
// through both simulation backends, reproduce the refutation at the
// predicted cycle.
func TestCexSequenceBridge(t *testing.T) {
	golden := mustCompile(t, cntGolden, "cnt")
	bugSrc := `module cnt(input clk, input rst_n, input en, input [7:0] d, output reg [7:0] q, output hit);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) q <= 8'd0;
        else if (en) q <= q + 8'd1;
    end
    assign hit = (q >= d);
endmodule
`
	res, err := BMCEquiv(golden, mustCompile(t, bugSrc, "cnt"), "clk", 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("hit-comparison bug must be refuted within 8 cycles")
	}
	vectors := res.Cex.Vectors()
	if len(vectors) != len(res.Cex.Inputs) {
		t.Fatalf("vector stream length %d, want %d", len(vectors), len(res.Cex.Inputs))
	}

	for _, backend := range []sim.Backend{sim.BackendCompiled, sim.BackendEventDriven} {
		sG, err := sim.CompileAndNewBackend(cntGolden, "cnt", backend)
		if err != nil {
			t.Fatal(err)
		}
		sB, err := sim.CompileAndNewBackend(bugSrc, "cnt", backend)
		if err != nil {
			t.Fatal(err)
		}
		hG, hB := sim.NewHarness(sG, "clk"), sim.NewHarness(sB, "clk")
		if err := hG.ApplyReset(ResetCycles); err != nil {
			t.Fatal(err)
		}
		if err := hB.ApplyReset(ResetCycles); err != nil {
			t.Fatal(err)
		}
		divergedAt := -1
		for cyc, in := range vectors {
			outG, err := hG.Cycle(in)
			if err != nil {
				t.Fatal(err)
			}
			outB, err := hB.Cycle(in)
			if err != nil {
				t.Fatal(err)
			}
			for name, v := range outG {
				if outB[name] != v && divergedAt < 0 {
					divergedAt = cyc
				}
			}
			if divergedAt >= 0 {
				break
			}
		}
		if divergedAt != res.Cex.Cycle {
			t.Fatalf("backend %v: sequence replay diverged at %d, formal predicted %d", backend, divergedAt, res.Cex.Cycle)
		}
	}
}

// TestBMCEquivPortMismatch pins the output-set convention: an output the
// second design lacks compares against zero, like the scoreboard's map
// lookup, so renaming an output is detectable.
func TestBMCEquivPortMismatch(t *testing.T) {
	a := `module m(input [3:0] x, output [3:0] y);
    assign y = x + 4'd1;
endmodule
`
	b := `module m(input [3:0] x, output [3:0] z);
    assign z = x + 4'd1;
endmodule
`
	res, err := CombEquiv(mustCompile(t, a, "m"), mustCompile(t, b, "m"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("renamed output must be detectable")
	}
}

// TestBMCMemoryEquiv exercises memories through the sequential engine: a
// register file written through one port is equivalent to itself, and a
// write-enable polarity bug is refuted with a replayable cex.
func TestBMCMemoryEquiv(t *testing.T) {
	golden := `module rf(input clk, input we, input [2:0] wa, input [2:0] ra, input [7:0] wd, output [7:0] rd);
    reg [7:0] mem [0:7];
    assign rd = mem[ra];
    always @(posedge clk) begin
        if (we) mem[wa] <= wd;
    end
endmodule
`
	bug := `module rf(input clk, input we, input [2:0] wa, input [2:0] ra, input [7:0] wd, output [7:0] rd);
    reg [7:0] mem [0:7];
    assign rd = mem[ra];
    always @(posedge clk) begin
        if (!we) mem[wa] <= wd;
    end
endmodule
`
	g, b := mustCompile(t, golden, "rf"), mustCompile(t, bug, "rf")
	res, err := BMCEquiv(g, g, "clk", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("register file must be self-equivalent")
	}
	res, err = BMCEquiv(g, b, "clk", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("write-enable polarity bug must be refuted")
	}
	div, _, err := ReplayCex(golden, bug, "rf", "clk", res.Cex, sim.BackendCompiled)
	if err != nil || !div {
		t.Fatalf("memory cex replay: diverged=%v err=%v", div, err)
	}
}

// TestPromotedAssertionWrapper pins the assert-package promotion wrapper
// the prover emits.
func TestPromotedAssertionWrapper(t *testing.T) {
	base := assert.Bound{Signal: "q", Limit: 9}
	p := assert.Promote(base, 12)
	if p.Name() != base.Name() {
		t.Fatalf("promotion must keep the assertion name, got %q", p.Name())
	}
	if p.Depth != 12 {
		t.Fatalf("depth = %d", p.Depth)
	}
	if !p.Check(nil, map[string]uint64{"q": 5}) || p.Check(nil, map[string]uint64{"q": 10}) {
		t.Fatal("promoted assertion must delegate Check")
	}
	if got := p.Describe(); got == base.Describe() {
		t.Fatal("promoted description should record the proof depth")
	}
}

// TestBMCEquivOutputShadowing is the regression test for the output-set
// convention: a candidate that renames its output port but keeps a
// same-named *internal* signal mirroring the golden must be refuted —
// the miter compares what a harness scoreboard observes (output ports,
// missing ones reading zero), never internal state.
func TestBMCEquivOutputShadowing(t *testing.T) {
	golden := `module m(input clk, input [3:0] d, output reg [3:0] y);
    always @(posedge clk) y <= d;
endmodule
`
	shadow := `module m(input clk, input [3:0] d, output reg [3:0] z);
    reg [3:0] y;
    always @(posedge clk) begin
        y <= d;
        z <= 4'd0;
    end
endmodule
`
	res, err := BMCEquiv(mustCompile(t, golden, "m"), mustCompile(t, shadow, "m"), "clk", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("internal signal shadowing a renamed output must not fake equivalence")
	}
	div, cyc, err := ReplayCex(golden, shadow, "m", "clk", res.Cex, sim.BackendCompiled)
	if err != nil || !div || cyc != res.Cex.Cycle {
		t.Fatalf("shadowing cex replay: div=%v cyc=%d err=%v", div, cyc, err)
	}
}
