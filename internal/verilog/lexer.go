package verilog

import (
	"strings"
)

// Lexer converts Verilog source text into a token stream. It never fails
// hard: unrecognized input produces TokError tokens that the parser reports
// as syntax errors, which is essential because UVLLM routinely lints
// deliberately broken code.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, appending a final TokEOF.
func Lex(src string) []Token {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(n int) byte {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case c == '`':
			// Compiler directives (`timescale, `define) are skipped to
			// end of line; the benchmark subset does not use macros in
			// expressions.
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isBaseDigit(c byte) bool {
	return isDigit(c) || c == '_' || c == 'x' || c == 'X' || c == 'z' || c == 'Z' ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == '?'
}

// multiCharOps are matched longest-first.
var multiCharOps = []string{
	"===", "!==", "<<<", ">>>",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "~&", "~|", "~^", "^~",
	"+:", "-:",
}

// Next returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}
	}
	line, col := l.line, l.col
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}

	case isDigit(c), c == '\'':
		return l.lexNumber(line, col)

	case c == '"':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peek() != '"' && l.peek() != '\n' {
			l.advance()
		}
		text := l.src[start:l.pos]
		if l.pos < len(l.src) && l.peek() == '"' {
			l.advance()
			return Token{Kind: TokString, Text: text, Line: line, Col: col}
		}
		return Token{Kind: TokError, Text: text, Line: line, Col: col}

	default:
		// Multi-character operators first.
		rest := l.src[l.pos:]
		for _, op := range multiCharOps {
			if strings.HasPrefix(rest, op) {
				for range op {
					l.advance()
				}
				return Token{Kind: TokOp, Text: op, Line: line, Col: col}
			}
		}
		l.advance()
		switch c {
		case '(', ')', '[', ']', '{', '}', ';', ',', '.', ':', '#', '@', '?':
			return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}
		case '+', '-', '*', '/', '%', '=', '<', '>', '!', '&', '|', '^', '~':
			return Token{Kind: TokOp, Text: string(c), Line: line, Col: col}
		}
		return Token{Kind: TokError, Text: string(c), Line: line, Col: col}
	}
}

// lexNumber handles plain decimals, based literals (8'hFF, 'b1010) and the
// malformed bases the fault generator produces (8'q3), which lex as TokError
// so the parser reports a data-handling syntax error.
func (l *Lexer) lexNumber(line, col int) Token {
	start := l.pos
	// Optional size prefix.
	for l.pos < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	if l.pos < len(l.src) && l.peek() == '\'' {
		l.advance()
		if l.pos < len(l.src) && (l.peek() == 's' || l.peek() == 'S') {
			l.advance()
		}
		base := l.peek()
		switch base {
		case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
			l.advance()
			digStart := l.pos
			for l.pos < len(l.src) && isBaseDigit(l.peek()) {
				l.advance()
			}
			if l.pos == digStart { // 8'h with no digits
				return Token{Kind: TokError, Text: l.src[start:l.pos], Line: line, Col: col}
			}
			return Token{Kind: TokNumber, Text: l.src[start:l.pos], Line: line, Col: col}
		default:
			// Malformed base letter: consume it plus any digits so the
			// error token is self-contained.
			if l.pos < len(l.src) && isIdentPart(l.peek()) {
				for l.pos < len(l.src) && isIdentPart(l.peek()) {
					l.advance()
				}
			}
			return Token{Kind: TokError, Text: l.src[start:l.pos], Line: line, Col: col}
		}
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Line: line, Col: col}
}
