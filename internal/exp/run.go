// Package exp is the evaluation harness: it runs UVLLM and every baseline
// over the 331-instance error benchmark and regenerates each figure and
// table of the paper's evaluation section (Figs. 5–7, Tables II–III).
package exp

import (
	"context"
	"runtime"
	"sync"

	"uvllm/internal/baseline"
	"uvllm/internal/core"
	"uvllm/internal/dataset"
	"uvllm/internal/faultgen"
	"uvllm/internal/llm"
	"uvllm/internal/sim"
	"uvllm/internal/uvm"
)

// Record is the full evaluation of one benchmark instance.
type Record struct {
	Fault *faultgen.Fault

	UVLLM    core.Result
	UVLLMFix bool // expert-validated (FR numerator)

	MEIC    baseline.Outcome
	MEICFix bool

	Raw    baseline.Outcome
	RawFix bool

	// Template tools run on functional instances only (they cannot start
	// from syntax-broken code); nil otherwise.
	Strider      *baseline.Outcome
	StriderFix   bool
	RTLRepair    *baseline.Outcome
	RTLRepairFix bool
}

// Config selects what to run.
type Config struct {
	Seed            int64
	Mode            llm.GenMode
	Profile         *llm.Profile // nil = DefaultProfile
	SkipBaselines   bool
	DisableRollback bool
	SLThreshold     int               // 0 = default
	Instances       []*faultgen.Fault // nil = full benchmark
	Workers         int               // 0 = NumCPU
	Backend         sim.Backend       // simulation engine (zero value: compiled)

	// Cache is the compile cache shared by every simulation of the run —
	// UVLLM jobs, all four baselines and the expert validation — so the
	// 331 instances compile each of the 27 golden modules exactly once.
	// nil uses the process-wide sim.SharedCache.
	Cache *sim.Cache
	// Memo is the golden-trace memo shared the same way; nil uses the
	// process-wide uvm.SharedTraceMemo.
	Memo *uvm.TraceMemo
}

// services resolves the run's shared simulation bundle.
func (cfg Config) services() baseline.SimServices {
	svc := baseline.SimServices{Backend: cfg.Backend, Cache: cfg.Cache, Memo: cfg.Memo}
	if svc.Cache == nil {
		svc.Cache = sim.SharedCache()
	}
	if svc.Memo == nil {
		svc.Memo = uvm.SharedTraceMemo()
	}
	return svc
}

func oracleFor(f *faultgen.Fault, prof llm.Profile, seed int64) *llm.Oracle {
	m := f.Meta()
	return llm.NewOracle(llm.Knowledge{
		FaultID: f.ID, Golden: f.Golden, Class: string(f.Class),
		Complexity: m.Complexity, IsFSM: m.IsFSM,
	}, prof, seed)
}

// Run evaluates all configured instances, in parallel, deterministically.
func Run(cfg Config) []*Record {
	instances := cfg.Instances
	if instances == nil {
		instances = faultgen.Benchmark()
	}
	prof := llm.DefaultProfile()
	if cfg.Profile != nil {
		prof = *cfg.Profile
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	svc := cfg.services()
	recs := make([]*Record, len(instances))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				recs[i] = runOne(instances[i], cfg, prof, svc)
			}
		}()
	}
	for i := range instances {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return recs
}

func runOne(f *faultgen.Fault, cfg Config, prof llm.Profile, svc baseline.SimServices) *Record {
	m := f.Meta()
	rec := &Record{Fault: f}

	// UVLLM.
	rec.UVLLM = core.Verify(context.Background(), core.Input{
		Source: f.Source, Spec: m.Spec, Top: m.Top, Clock: m.Clock,
		RefName: m.Name, ModuleName: m.Name,
		Client: oracleFor(f, prof, cfg.Seed),
		Opts: core.Options{
			Seed: cfg.Seed, Mode: cfg.Mode,
			DisableRollback: cfg.DisableRollback,
			SLThreshold:     cfg.SLThreshold,
			Backend:         cfg.Backend,
			Cache:           svc.Cache,
			Memo:            svc.Memo,
		},
	})
	rec.UVLLMFix = rec.UVLLM.Success && ExpertPass(rec.UVLLM.Final, m, svc)

	if cfg.SkipBaselines {
		return rec
	}

	meic := baseline.NewMEIC(oracleFor(f, prof, cfg.Seed))
	meic.Sim = svc
	rec.MEIC = meic.Repair(f)
	rec.MEICFix = rec.MEIC.Hit && ExpertPass(rec.MEIC.Final, m, svc)

	raw := baseline.NewRawLLM(oracleFor(f, prof, cfg.Seed))
	raw.Sim = svc
	rec.Raw = raw.Repair(f)
	rec.RawFix = rec.Raw.Hit && ExpertPass(rec.Raw.Final, m, svc)

	if !f.Class.IsSyntax() {
		strider := baseline.NewStrider()
		strider.Sim = svc
		so := strider.Repair(f)
		rec.Strider = &so
		rec.StriderFix = so.Hit && ExpertPass(so.Final, m, svc)
		rtlr := baseline.NewRTLRepair()
		rtlr.Sim = svc
		ro := rtlr.Repair(f)
		rec.RTLRepair = &ro
		rec.RTLRepairFix = ro.Hit && ExpertPass(ro.Final, m, svc)
	}
	return rec
}

// groupOf maps a module to its Table II group.
func groupOf(f *faultgen.Fault) dataset.Category { return f.Meta().Category }
